// Registry-vs-docs drift gate: the scenario registry, the campaign book and
// the documentation must cover each other. A scenario without a campaign, a
// campaign without a report marker, or a README scenario table missing a
// registered scenario fails here — before cmd/report ever runs.
package repro_test

import (
	"os"
	"strings"
	"testing"

	"repro/ecnsim"
	"repro/internal/report"
)

// docFiles are the files cmd/report renders into (its -docs default).
var docFiles = []string{"README.md", "EXPERIMENTS.md"}

func parseDoc(t *testing.T, path string) (string, []report.Block) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := report.Parse(string(data))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return string(data), blocks
}

// TestEveryScenarioHasACampaign pins the "documented table for free"
// guarantee: registering a scenario without adding it to the campaign book
// is a test failure, not silent undocumentation.
func TestEveryScenarioHasACampaign(t *testing.T) {
	covered := make(map[string]bool)
	for _, c := range ecnsim.Campaigns() {
		if err := c.Validate(); err != nil {
			t.Errorf("registered campaign %q is invalid: %v", c.Name, err)
		}
		covered[c.Scenario] = true
	}
	for _, name := range ecnsim.Scenarios() {
		if !covered[name] {
			t.Errorf("scenario %q has no campaign definition (add one in ecnsim/campaigns.go)", name)
		}
	}
}

// TestEveryCampaignHasAReportBlock pins that the book lands in the docs:
// each campaign's marker pair must exist in one of the rendered files, and
// every marker must name a campaign (or the reserved scenario registry).
func TestEveryCampaignHasAReportBlock(t *testing.T) {
	markers := make(map[string]string) // name -> file
	for _, path := range docFiles {
		_, blocks := parseDoc(t, path)
		for _, b := range blocks {
			if prev, dup := markers[b.Name]; dup {
				t.Errorf("marker %q appears in both %s and %s", b.Name, prev, path)
			}
			markers[b.Name] = path
		}
	}
	for _, c := range ecnsim.Campaigns() {
		if _, ok := markers[c.Name]; !ok {
			t.Errorf("campaign %q has no <!-- report:%s --> block in %v", c.Name, c.Name, docFiles)
		}
	}
	for name, file := range markers {
		if name == "scenarios" {
			continue
		}
		if _, ok := ecnsim.CampaignFor(name); !ok {
			t.Errorf("%s: marker %q names no registered campaign", file, name)
		}
	}
}

// TestREADMEListsEveryScenario pins the README scenario table (the generated
// "scenarios" block) to the registry.
func TestREADMEListsEveryScenario(t *testing.T) {
	text, blocks := parseDoc(t, "README.md")
	var table string
	for _, b := range blocks {
		if b.Name == "scenarios" {
			table = text[b.Start:b.End]
		}
	}
	if table == "" {
		t.Fatal("README.md has no <!-- report:scenarios --> block")
	}
	for _, name := range ecnsim.Scenarios() {
		if !strings.Contains(table, "`"+name+"`") {
			t.Errorf("README scenario table is missing %q — regenerate with: go run ./cmd/report -quick", name)
		}
	}
}
