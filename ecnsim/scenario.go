package ecnsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Scenario is a parameterized workload over a configured Cluster. A scenario
// interprets the cluster's workload knobs (input size, senders, RPC interval,
// ...) and returns one or more uniform Result rows. Implementations must be
// deterministic in the cluster configuration (including its seed) and should
// honor ctx cancellation between expensive simulation runs.
type Scenario interface {
	// Name is the registry key ("terasort", "incast", ...).
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// Run executes the workload and returns its result rows.
	Run(ctx context.Context, c *Cluster) ([]Result, error)
}

// scenarioFunc adapts a function to the Scenario interface.
type scenarioFunc struct {
	name, desc string
	run        func(ctx context.Context, c *Cluster) ([]Result, error)
}

func (s scenarioFunc) Name() string        { return s.name }
func (s scenarioFunc) Description() string { return s.desc }
func (s scenarioFunc) Run(ctx context.Context, c *Cluster) ([]Result, error) {
	return s.run(ctx, c)
}

// NewScenario builds a Scenario from a function, for registration.
func NewScenario(name, description string, run func(ctx context.Context, c *Cluster) ([]Result, error)) Scenario {
	return scenarioFunc{name: name, desc: description, run: run}
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Scenario)
)

// Register adds a scenario to the registry. It panics on an empty name, a
// nil scenario, or a duplicate registration — scenario names are a flat,
// stable namespace that CLIs and archives key on.
func Register(s Scenario) {
	if s == nil {
		panic("ecnsim: Register(nil)")
	}
	name := s.Name()
	if name == "" {
		panic("ecnsim: Register with empty scenario name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("ecnsim: scenario %q registered twice", name))
	}
	registry[name] = s
}

// Lookup returns the named scenario, if registered.
func Lookup(name string) (Scenario, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// MustScenario returns the named scenario or an error naming the registered
// alternatives — the form CLIs want.
func MustScenario(name string) (Scenario, error) {
	if s, ok := Lookup(name); ok {
		return s, nil
	}
	return nil, fmt.Errorf("ecnsim: unknown scenario %q (registered: %v)", name, Scenarios())
}

// Scenarios returns the registered scenario names, sorted.
func Scenarios() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Describe returns the registered description for a scenario name, or "".
func Describe(name string) string {
	if s, ok := Lookup(name); ok {
		return s.Description()
	}
	return ""
}
