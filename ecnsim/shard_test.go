package ecnsim

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"strconv"
	"testing"
	"time"
)

// shardMatrixOpts is a leaf-spine fabric wide enough for eight shards
// (shards are capped at one per rack) while staying unit-test sized.
func shardMatrixOpts(extra ...Option) []Option {
	return append([]Option{
		Nodes(16),
		Racks(8),
		Spines(2),
		InputSize(32 << 20),
		BlockSize(8 << 20),
		Reducers(4),
		Queue(RED),
		Protect(ACKSYN),
		TargetDelay(100 * time.Microsecond),
		Seed(1),
	}, extra...)
}

// runShardMatrix drives the determinism matrix: jobs(shards) builds the job
// list for one shard count, and every 1/2/4/8-shard × 1/4-worker combination
// must serialize to a ResultSet byte-identical to the serial single-worker
// run. Shards parallelize inside one simulation, Runner workers parallelize
// across simulations; neither may leak into the results.
func runShardMatrix(t *testing.T, jobs func(t *testing.T, shards int) []Job) {
	t.Helper()
	run := func(shards, workers int) []byte {
		t.Helper()
		r := &Runner{Workers: workers}
		rs, err := r.Run(context.Background(), jobs(t, shards)...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := run(1, 1)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			if shards == 1 && workers == 1 {
				continue
			}
			if got := run(shards, workers); !bytes.Equal(got, want) {
				t.Errorf("ResultSet at %d shards / %d workers diverged from serial:\n got:  %s\n want: %s",
					shards, workers, got, want)
			}
		}
	}
}

// TestShardMatrixByteIdentical is the cross-engine determinism matrix over
// the plain packet engine: the leafspine and degradedfabric scenarios.
func TestShardMatrixByteIdentical(t *testing.T) {
	runShardMatrix(t, func(t *testing.T, shards int) []Job {
		return []Job{
			{Scenario: mustLookup(t, "leafspine"), Cluster: mustCluster(t, shardMatrixOpts(Shards(shards))...)},
			{Scenario: mustLookup(t, "degradedfabric"), Cluster: mustCluster(t, shardMatrixOpts(Shards(shards))...)},
		}
	})
}

// TestNotifyMatrixByteIdentical is the same matrix over the congestion
// notifier: hotspot (reroute + throttle on the derated fabric) and
// degradedfabric with notifications on. Notifications cross the shard cut —
// occupancy crossings observed in shard context become control events that
// re-salt routing and gate sources — so this is the proof that the whole
// notification pipeline lives inside the determinism contract.
func TestNotifyMatrixByteIdentical(t *testing.T) {
	runShardMatrix(t, func(t *testing.T, shards int) []Job {
		return []Job{
			{Scenario: mustLookup(t, "hotspot"), Cluster: mustCluster(t, shardMatrixOpts(Notify(), Shards(shards))...)},
			{Scenario: mustLookup(t, "degradedfabric"), Cluster: mustCluster(t, shardMatrixOpts(Notify(), Shards(shards))...)},
		}
	})
}

// TestShardsOptionValidation pins the NewCluster-time contract of the
// Shards/ShardAuto options.
func TestShardsOptionValidation(t *testing.T) {
	// Explicit counts below 1 are rejected at option time.
	for _, n := range []int{0, -1, -7} {
		if _, err := NewCluster(shardMatrixOpts(Shards(n))...); err == nil {
			t.Errorf("Shards(%d) accepted", n)
		}
	}
	// More shards than leaves is rejected: the leaf/spine cut yields at most
	// one shard per rack.
	if _, err := NewCluster(shardMatrixOpts(Shards(9))...); err == nil {
		t.Error("Shards(9) on an 8-rack fabric accepted")
	}
	// In-range explicit requests resolve verbatim.
	c := mustCluster(t, shardMatrixOpts(Shards(4))...)
	if c.Shards() != 4 || len(c.Warnings()) != 0 {
		t.Errorf("Shards(4) resolved to %d with warnings %v", c.Shards(), c.Warnings())
	}
	// ShardAuto survives resolution as the sentinel on any fabric — the
	// machine-dependent count is chosen at run time, never baked into the
	// configuration (which must stay machine-independent).
	c = mustCluster(t, shardMatrixOpts(ShardAuto())...)
	if c.Shards() != AutoShards {
		t.Errorf("ShardAuto resolved to %d, want AutoShards (%d)", c.Shards(), AutoShards)
	}
	if c := mustCluster(t, Nodes(8), ShardAuto()); c.Shards() != AutoShards || len(c.Warnings()) != 0 {
		t.Errorf("ShardAuto on a star fabric: shards %d, warnings %v", c.Shards(), c.Warnings())
	}
}

// TestShardFallbackWarning: an explicit Shards(n > 1) on a fabric with no
// leaf/spine cut demotes to serial with a typed warning instead of failing.
func TestShardFallbackWarning(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"star", []Option{Nodes(8), Shards(4)}},
		{"two-tier", []Option{Nodes(8), Racks(4), Shards(4)}},
	} {
		c := mustCluster(t, tc.opts...)
		if c.Shards() != 1 {
			t.Errorf("%s: demoted shard count = %d, want 1", tc.name, c.Shards())
		}
		var w *ShardFallbackWarning
		if len(c.Warnings()) != 1 || !errors.As(c.Warnings()[0], &w) {
			t.Fatalf("%s: warnings = %v, want one *ShardFallbackWarning", tc.name, c.Warnings())
		}
		if w.Requested != 4 {
			t.Errorf("%s: warning carries request %d, want 4", tc.name, w.Requested)
		}
	}
}

// TestShardsMoveFingerprint documents that the shard request is part of the
// canonical form: results are bit-identical at every count, so keying the
// cache on it costs at worst a recompute — while leaving any run-plan field
// out of the key is the failure mode the fingerprintcoverage lint exists to
// prevent.
func TestShardsMoveFingerprint(t *testing.T) {
	serial := mustCluster(t, shardMatrixOpts()...)
	sharded := mustCluster(t, shardMatrixOpts(Shards(4))...)
	if serial.Fingerprint() == sharded.Fingerprint() {
		t.Error("Shards(4) did not move the fingerprint")
	}
}

// TestFlagBinderGroups: a binder registers exactly its groups' flags, plus
// -shards always.
func TestFlagBinderGroups(t *testing.T) {
	has := func(fs *flag.FlagSet, name string) bool { return fs.Lookup(name) != nil }

	fs := flag.NewFlagSet("fabric-only", flag.ContinueOnError)
	b := NewFlagBinder(FlagsFabric)
	b.Bind(fs)
	for _, want := range []string{"racks", "spines", "shards"} {
		if !has(fs, want) {
			t.Errorf("FlagsFabric binder missing -%s", want)
		}
	}
	for _, absent := range []string{"queue", "buffer", "target", "seed", "jobs"} {
		if has(fs, absent) {
			t.Errorf("FlagsFabric binder registered stray -%s", absent)
		}
	}

	fs = flag.NewFlagSet("everything", flag.ContinueOnError)
	b = NewFlagBinder(FlagsQueue | FlagsBuffer | FlagsWorkload | FlagsFabric | FlagsSeed | FlagsTenant)
	b.Bind(fs)
	for _, want := range []string{
		"queue", "mode", "transport", "buffer", "target", "nodes", "input",
		"block", "reducers", "racks", "spines", "seed", "jobs", "arrival",
		"rpc-clients", "shards",
	} {
		if !has(fs, want) {
			t.Errorf("full binder missing -%s", want)
		}
	}
}

// TestFlagBinderShards: -shards parses through to the builder — explicit
// counts verbatim, 0 as ShardAuto, negatives rejected at option time.
func TestFlagBinderShards(t *testing.T) {
	parse := func(t *testing.T, args ...string) (*Cluster, error) {
		t.Helper()
		b := NewFlagBinder(FlagsFabric)
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		b.Bind(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		opts, err := b.Options()
		if err != nil {
			return nil, err
		}
		return NewCluster(append([]Option{Nodes(16)}, opts...)...)
	}

	c, err := parse(t, "-racks", "8", "-spines", "2", "-shards", "4")
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 4 {
		t.Errorf("-shards 4 resolved to %d", c.Shards())
	}

	c, err = parse(t, "-racks", "8", "-spines", "2", "-shards", "0")
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != AutoShards {
		t.Errorf("-shards 0 resolved to %d, want AutoShards", c.Shards())
	}

	// Unset, the default is serial — no silent auto-sharding.
	c, err = parse(t, "-racks", "8", "-spines", "2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 1 {
		t.Errorf("default -shards resolved to %d, want 1", c.Shards())
	}

	if _, err := parse(t, "-shards", strconv.Itoa(-2)); err == nil {
		t.Error("-shards -2 accepted")
	}
}

// TestFlagBinderOptionsScoped: an unbound group contributes no options, so
// builder defaults survive — the binder must not push its FlagSet's zero
// values over them.
func TestFlagBinderOptionsScoped(t *testing.T) {
	b := NewFlagBinder(FlagsFabric)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	b.Bind(fs)
	if err := fs.Parse([]string{"-racks", "4", "-spines", "2"}); err != nil {
		t.Fatal(err)
	}
	opts, err := b.Options()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(append([]Option{Queue(RED), Protect(ACKSYN), TargetDelay(250 * time.Microsecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if c.Racks() != 4 || c.Spines() != 2 {
		t.Errorf("fabric = %d/%d, want 4/2", c.Racks(), c.Spines())
	}
	// The queue configuration came from the caller's options, untouched by
	// the binder's unbound FlagsQueue defaults ("droptail").
	if c.QueueKind() != RED || c.Label() != "ecn-ack+syn" {
		t.Errorf("unbound queue group leaked into the builder: %v", c)
	}
}

// TestDeprecatedBindersUnchanged: the legacy Bind/Options surface must keep
// its exact flag set — in particular, no -shards — so existing callers see
// no behavior change.
func TestDeprecatedBindersUnchanged(t *testing.T) {
	fl := DefaultFlags()
	fs := flag.NewFlagSet("legacy", flag.ContinueOnError)
	fl.Bind(fs)
	for _, want := range []string{"queue", "mode", "transport", "buffer", "target", "nodes", "racks", "spines", "input", "block", "reducers", "seed"} {
		if fs.Lookup(want) == nil {
			t.Errorf("legacy Bind lost -%s", want)
		}
	}
	if fs.Lookup("shards") != nil {
		t.Error("legacy Bind grew -shards; the binder owns the run group")
	}
	opts, err := fl.Options()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 0 {
		t.Errorf("legacy Options set shards = %d, want the untouched zero value", c.Shards())
	}
}
