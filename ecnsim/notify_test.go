package ecnsim

import (
	"flag"
	"testing"
)

// TestNotifyFingerprint pins the canonical-form contract of the notification
// knobs: a Notify-off configuration fingerprints identically whatever the
// resolved threshold default says (it must not lower — byte-identical to the
// pre-notification engine), while Notify() and each knob move the
// fingerprint and the mechanism options resolve as the spec does.
func TestNotifyFingerprint(t *testing.T) {
	base := mustCluster(t, TestScale())
	// The resolved default (threshold 64) exists on every cluster; without an
	// enabler it must stay out of the canonical form.
	if got := mustCluster(t, TestScale(), NotifyThreshold(32)); base.Fingerprint() != got.Fingerprint() {
		t.Error("NotifyThreshold without Notify() moved the fingerprint")
	}
	notify := mustCluster(t, TestScale(), Notify())
	if base.Fingerprint() == notify.Fingerprint() {
		t.Error("Notify() did not move the fingerprint")
	}
	if got := mustCluster(t, TestScale(), Notify(), NotifyThreshold(32)); got.Fingerprint() == notify.Fingerprint() {
		t.Error("NotifyThreshold under Notify() did not move the fingerprint")
	}
	// Notify() resolves to both mechanisms, so Reroute()+Throttle() is the
	// same canonical form — and each mechanism alone is a distinct one.
	if got := mustCluster(t, TestScale(), Reroute(), Throttle()); got.Fingerprint() != notify.Fingerprint() {
		t.Error("Reroute()+Throttle() diverged from Notify()")
	}
	reroute := mustCluster(t, TestScale(), Reroute())
	throttle := mustCluster(t, TestScale(), Throttle())
	if reroute.Fingerprint() == notify.Fingerprint() || throttle.Fingerprint() == notify.Fingerprint() ||
		reroute.Fingerprint() == throttle.Fingerprint() {
		t.Error("mechanism selections do not fingerprint distinctly")
	}
}

// TestNotifyOptionValidation pins the NewCluster-time contract of the
// notification options.
func TestNotifyOptionValidation(t *testing.T) {
	for _, n := range []int{0, -1, -64} {
		if _, err := NewCluster(TestScale(), Notify(), NotifyThreshold(n)); err == nil {
			t.Errorf("NotifyThreshold(%d) accepted", n)
		}
	}
	if _, err := NewCluster(TestScale(), Notify()); err != nil {
		t.Errorf("Notify() on the default testbed rejected: %v", err)
	}
}

// TestFlagsNotify: the FlagsNotify group binds -notify, -notify-threshold,
// -reroute and -throttle, resolves them only when an enabler is set, and
// stays off other binders.
func TestFlagsNotify(t *testing.T) {
	b := NewFlagBinder(FlagsNotify | FlagsFabric)
	fs := flag.NewFlagSet("notify", flag.ContinueOnError)
	b.Bind(fs)
	for _, want := range []string{"notify", "notify-threshold", "reroute", "throttle", "shards"} {
		if fs.Lookup(want) == nil {
			t.Errorf("FlagsNotify binder missing -%s", want)
		}
	}
	if fs := flag.NewFlagSet("plain", flag.ContinueOnError); true {
		NewFlagBinder(FlagsFabric).Bind(fs)
		if fs.Lookup("notify") != nil {
			t.Error("FlagsFabric binder grew -notify")
		}
	}

	if err := fs.Parse([]string{"-reroute", "-notify-threshold", "32", "-racks", "8", "-spines", "4"}); err != nil {
		t.Fatal(err)
	}
	opts, err := b.Options()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(append([]Option{Nodes(64)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	// Shards(1): the binder's implicit FlagsRun group always resolves.
	want := mustCluster(t, Nodes(64), Racks(8), Spines(4), Shards(1), Reroute(), NotifyThreshold(32))
	if c.Fingerprint() != want.Fingerprint() {
		t.Errorf("flag-built cluster fingerprint diverges from the option-built one")
	}

	// -notify alone engages both mechanisms, exactly like Notify().
	b3 := NewFlagBinder(FlagsNotify)
	fs3 := flag.NewFlagSet("both", flag.ContinueOnError)
	b3.Bind(fs3)
	if err := fs3.Parse([]string{"-notify"}); err != nil {
		t.Fatal(err)
	}
	opts3, err := b3.Options()
	if err != nil {
		t.Fatal(err)
	}
	c3, err := NewCluster(opts3...)
	if err != nil {
		t.Fatal(err)
	}
	if want := mustCluster(t, Shards(1), Notify()); c3.Fingerprint() != want.Fingerprint() {
		t.Error("-notify diverged from Notify()")
	}

	// Without an enabler the threshold flag contributes nothing: the build is
	// fingerprint-identical to a plain cluster — the Notify-off pin.
	b2 := NewFlagBinder(FlagsNotify)
	fs2 := flag.NewFlagSet("off", flag.ContinueOnError)
	b2.Bind(fs2)
	if err := fs2.Parse([]string{"-notify-threshold", "32"}); err != nil {
		t.Fatal(err)
	}
	opts2, err := b2.Options()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCluster(opts2...)
	if err != nil {
		t.Fatal(err)
	}
	if plain := mustCluster(t, Shards(1)); c2.Fingerprint() != plain.Fingerprint() {
		t.Error("-notify-threshold without an enabler moved the fingerprint")
	}
}
