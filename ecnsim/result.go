package ecnsim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Canonical Result value keys. Every metric is a float64 in SI base units
// (seconds, bytes, bits per second, plain counts), so rows from different
// scenarios marshal uniformly.
const (
	KeyTargetDelay   = "target_delay_s"
	KeyRuntime       = "runtime_s"
	KeyThroughput    = "throughput_bps"
	KeyMeanLatency   = "mean_latency_s"
	KeyP99Latency    = "p99_latency_s"
	KeyShuffledBytes = "shuffled_bytes"
	KeyEarlyDrops    = "early_drops"
	KeyOverflowDrops = "overflow_drops"
	KeyAckDropShare  = "ack_drop_share"
	KeyMarks         = "marks"
	KeyRetransmits   = "retransmits"
	KeyRTOEvents     = "rto_events"
	KeySynRetries    = "syn_retries"
	KeyFetchRetries  = "fetch_retries"

	// Substrate accounting: discrete events the engine executed and the
	// simulated clock at the end of the run. cmd/bench divides wall time by
	// these to report events/sec and ns per simulated second.
	KeySimEvents = "sim_events"
	KeySimTime   = "sim_time_s"
)

// Result is one uniform output row: a scenario name, the series label of the
// configuration that produced it, the base seed, and named metric values.
type Result struct {
	Scenario string             `json:"scenario"`
	Label    string             `json:"label"`
	Seed     uint64             `json:"seed"`
	Values   map[string]float64 `json:"values"`
}

// Value returns the named metric, or 0 if absent.
func (r Result) Value(key string) float64 { return r.Values[key] }

// Duration interprets the named metric (stored in seconds) as a duration.
func (r Result) Duration(key string) time.Duration {
	return time.Duration(r.Values[key] * float64(time.Second))
}

// Keys returns the row's metric names in sorted order.
func (r Result) Keys() []string {
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ResultSet is an ordered collection of Result rows, as returned by a Runner.
type ResultSet struct {
	Results []Result `json:"results"`
}

// WriteJSON serializes the set as indented JSON. Map keys marshal sorted, so
// equal sets produce byte-identical output.
func (rs *ResultSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// ReadResultsJSON deserializes a set written by WriteJSON.
func ReadResultsJSON(r io.Reader) (*ResultSet, error) {
	var rs ResultSet
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("ecnsim: decoding results: %w", err)
	}
	return &rs, nil
}

// WriteCSV writes the set as CSV: scenario, label, seed, then the sorted
// union of every row's metric keys (absent values are empty cells).
func (rs *ResultSet) WriteCSV(w io.Writer) error {
	union := make(map[string]bool)
	for _, r := range rs.Results {
		for k := range r.Values {
			union[k] = true
		}
	}
	keys := make([]string, 0, len(union))
	for k := range union {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"scenario", "label", "seed"}, keys...)); err != nil {
		return err
	}
	for _, r := range rs.Results {
		row := []string{r.Scenario, r.Label, strconv.FormatUint(r.Seed, 10)}
		for _, k := range keys {
			v, ok := r.Values[k]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
