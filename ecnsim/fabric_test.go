package ecnsim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// leafSpineOpts keeps one leaf-spine simulation around a tenth of a second:
// 8 nodes in 4 racks under 2 spines, so every shuffle crosses the ECMP core.
func leafSpineOpts(extra ...Option) []Option {
	return append([]Option{
		Nodes(8),
		Racks(4),
		Spines(2),
		InputSize(32 << 20),
		BlockSize(8 << 20),
		Reducers(4),
		Queue(RED),
		Protect(ACKSYN),
		TargetDelay(100 * time.Microsecond),
		Seed(1),
	}, extra...)
}

func TestFabricScenariosRegistered(t *testing.T) {
	for _, want := range []string{"leafspine", "degradedfabric"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("scenario %q not registered (have %v)", want, Scenarios())
		}
		if Describe(want) == "" {
			t.Errorf("scenario %q has no description", want)
		}
	}
}

// TestLeafSpineDeterministicAcrossWorkers is the ECMP determinism test: the
// same leaf-spine jobs through Runner pools of 1, 4 and 8 workers (with seed
// replications) must produce bit-identical ResultSets — the flow hash is
// salted from the run seed, never from scheduling.
func TestLeafSpineDeterministicAcrossWorkers(t *testing.T) {
	jobs := func() []Job {
		return []Job{
			{Scenario: mustLookup(t, "leafspine"), Cluster: mustCluster(t, leafSpineOpts()...)},
			{Scenario: mustLookup(t, "leafspine"), Cluster: mustCluster(t, leafSpineOpts(Queue(DropTail), Protect(NoProtection))...)},
			{Scenario: mustLookup(t, "degradedfabric"), Cluster: mustCluster(t, leafSpineOpts()...)},
		}
	}
	run := func(workers int) *ResultSet {
		r := &Runner{Workers: workers, Replications: 2}
		rs, err := r.Run(context.Background(), jobs()...)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	sets := map[int]*ResultSet{1: run(1), 4: run(4), 8: run(8)}
	for _, workers := range []int{4, 8} {
		if !reflect.DeepEqual(sets[1], sets[workers]) {
			t.Fatalf("1-worker and %d-worker runs diverged:\n%+v\n%+v",
				workers, sets[1], sets[workers])
		}
		var a, b bytes.Buffer
		if err := sets[1].WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := sets[workers].WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("marshalled JSON differs between 1 and %d workers", workers)
		}
	}
	// Sanity: the rows really came from a leaf-spine run.
	rows := sets[1].Results
	if len(rows) != 5 { // leafspine x2 + degradedfabric's three setups
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[0].Value(KeyRacks) != 4 || rows[0].Value(KeySpines) != 2 {
		t.Errorf("fabric shape keys = %g racks / %g spines, want 4/2",
			rows[0].Value(KeyRacks), rows[0].Value(KeySpines))
	}
}

func mustCluster(t *testing.T, opts ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLeafSpineDefaults checks the scenario's fabric defaulting: a cluster
// left as a star is reshaped to 4 (or 2) racks under 2 spines, and node
// counts that fit neither are rejected instead of silently rounded.
func TestLeafSpineDefaults(t *testing.T) {
	run := func(nodes int) ([]Result, error) {
		rs, err := RunScenario(context.Background(), "leafspine",
			Nodes(nodes), InputSize(16<<20), BlockSize(8<<20), Reducers(2),
			Queue(RED), Protect(ACKSYN), TargetDelay(100*time.Microsecond))
		if err != nil {
			return nil, err
		}
		return rs.Results, nil
	}
	rows, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Value(KeyRacks) != 4 || rows[0].Value(KeySpines) != 2 {
		t.Errorf("8-node default shape = %g/%g, want 4 racks / 2 spines",
			rows[0].Value(KeyRacks), rows[0].Value(KeySpines))
	}
	rows, err = run(6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Value(KeyRacks) != 2 {
		t.Errorf("6-node default racks = %g, want 2", rows[0].Value(KeyRacks))
	}
	if _, err := run(5); err == nil || !strings.Contains(err.Error(), "Racks") {
		t.Errorf("5 nodes should not default to a leaf-spine shape, got %v", err)
	}
}

// TestLeafSpineTierOccupancy: a cross-rack shuffle must put measurable
// queueing on the core tiers, and the occupancy keys must be present on
// every row.
func TestLeafSpineTierOccupancy(t *testing.T) {
	rs, err := RunScenario(context.Background(), "leafspine", leafSpineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Results[0]
	for _, key := range []string{KeyHostUpOcc, KeyEdgeOcc, KeyCoreUpOcc, KeyCoreDownOcc} {
		if _, ok := r.Values[key]; !ok {
			t.Errorf("row missing tier key %q", key)
		}
	}
	if r.Value(KeyCoreUpOcc) <= 0 {
		t.Error("cross-rack shuffle left the leaf->spine tier idle")
	}
}

// TestDegradedFabricRows: one row per protection setup, and the derated
// uplink must actually hurt — the DropTail baseline on the sick fabric runs
// no faster than the same workload on the healthy one.
func TestDegradedFabricRows(t *testing.T) {
	rs, err := RunScenario(context.Background(), "degradedfabric", leafSpineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"droptail", "ecn-default", "ecn-ack+syn"}
	if len(rs.Results) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rs.Results), len(want))
	}
	for i, r := range rs.Results {
		if r.Label != want[i] {
			t.Errorf("row %d label = %q, want %q", i, r.Label, want[i])
		}
		if r.Value(KeyRuntime) <= 0 {
			t.Errorf("row %q has no runtime", r.Label)
		}
	}

	healthy, err := RunScenario(context.Background(), "leafspine",
		leafSpineOpts(Queue(DropTail), Protect(NoProtection))...)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Results[0].Value(KeyRuntime) < healthy.Results[0].Value(KeyRuntime) {
		t.Errorf("derated spine uplink sped the job up: %gs degraded vs %gs healthy",
			rs.Results[0].Value(KeyRuntime), healthy.Results[0].Value(KeyRuntime))
	}
}

// TestDegradedFabricDCTCPSetups: under Transport(DCTCP) the comparison rows
// switch to the DCTCP setup family.
func TestDegradedFabricDCTCPSetups(t *testing.T) {
	rs, err := RunScenario(context.Background(), "degradedfabric",
		leafSpineOpts(Transport(DCTCP))...)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"droptail", "dctcp-default", "dctcp-ack+syn"}
	for i, r := range rs.Results {
		if r.Label != want[i] {
			t.Errorf("row %d label = %q, want %q", i, r.Label, want[i])
		}
	}
}

// TestDegradeLinkValidation: misconfigured degradations must fail from
// NewCluster with a named-link error, not panic mid-run.
func TestDegradeLinkValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"star fabric", []Option{Nodes(4), DegradeLink("leaf0", "spine0", 0.5)}},
		{"unknown switch", append(leafSpineOpts(), DegradeLink("leaf0", "spine9", 0.5))},
		{"not an inter-switch link", append(leafSpineOpts(), DegradeLink("leaf0", "leaf1", 0.5))},
		{"fail with one spine", []Option{
			Nodes(8), Racks(4), Spines(1), DegradeLink("leaf0", "spine0", 0)}},
		{"joint partition", append(leafSpineOpts(), // leaf0 and leaf1 share no surviving spine
			DegradeLink("leaf0", "spine0", 0), DegradeLink("leaf1", "spine1", 0))},
		{"leading-zero name", append(leafSpineOpts(), DegradeLink("leaf01", "spine0", 0.5))},
		{"fail on two-tier", []Option{Nodes(8), Racks(4), DegradeLink("tor0", "agg0", 0)}},
		{"factor out of range", append(leafSpineOpts(), DegradeLink("leaf0", "spine0", 1.5))},
	}
	for _, tc := range cases {
		if _, err := NewCluster(tc.opts...); err == nil {
			t.Errorf("%s: NewCluster accepted the degradation", tc.name)
		}
	}

	// The valid shapes still construct: leaf-spine derate, leaf-spine fail
	// with an alternate spine, two-tier derate.
	valid := [][]Option{
		append(leafSpineOpts(), DegradeLink("leaf0", "spine0", 0.25)),
		append(leafSpineOpts(), DegradeLink("spine1", "leaf2", 0)),
		append(leafSpineOpts(), // both failures on spine0: spine1 still serves every pair
			DegradeLink("leaf0", "spine0", 0), DegradeLink("leaf1", "spine0", 0)),
		{Nodes(8), Racks(4), DegradeLink("tor1", "agg0", 0.5)},
	}
	for i, opts := range valid {
		if _, err := NewCluster(opts...); err != nil {
			t.Errorf("valid degradation %d rejected: %v", i, err)
		}
	}
}

// TestSweepCarriesFabric pins findings that once slipped: NewSweep must
// thread DegradeLink into every grid cell, ScaleOptions must reproduce the
// full fabric shape (spines and degradations included), and the JSON archive
// must round-trip it — otherwise cmd/figures -load silently re-runs
// companions on a healthy two-tier fabric next to leaf-spine grid data.
func TestSweepCarriesFabric(t *testing.T) {
	s, err := NewSweep(Nodes(8), Racks(4), Spines(2), Seed(3),
		DegradeLink("leaf0", "spine0", 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.inner.Degrade); got != 1 {
		t.Fatalf("inner sweep carries %d degradations, want 1", got)
	}

	check := func(where string, sw *Sweep) {
		t.Helper()
		c, err := NewCluster(sw.ScaleOptions()...)
		if err != nil {
			t.Fatalf("%s: ScaleOptions do not rebuild: %v", where, err)
		}
		if c.Racks() != 4 || c.Spines() != 2 {
			t.Errorf("%s: shape = %d racks / %d spines, want 4/2", where, c.Racks(), c.Spines())
		}
		if len(c.degrade) != 1 || c.degrade[0].From != "leaf0" || c.degrade[0].Factor != 0.25 {
			t.Errorf("%s: degradations = %+v", where, c.degrade)
		}
	}
	check("fresh", s)

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check("archived", back)
	if got := len(back.inner.Degrade); got != 1 {
		t.Errorf("archive round-trip lost the degradations (%d)", got)
	}
}

// TestLeafSpineRejectsForeignDegradations: the scenario's fabric defaulting
// upgrades a star/two-tier cluster to leaf-spine, which invalidates
// degradations named for the original shape — that must error, not panic
// mid-run.
func TestLeafSpineRejectsForeignDegradations(t *testing.T) {
	_, err := RunScenario(context.Background(), "leafspine",
		Nodes(8), Racks(2), DegradeLink("tor0", "agg0", 0.5),
		InputSize(16<<20), BlockSize(8<<20), Reducers(2),
		Queue(RED), Protect(ACKSYN), TargetDelay(100*time.Microsecond))
	if err == nil || !strings.Contains(err.Error(), "do not fit") {
		t.Fatalf("two-tier degradation survived the leaf-spine reshape: %v", err)
	}
}

func TestOversubOption(t *testing.T) {
	if _, err := NewCluster(leafSpineOpts(Oversub(4))...); err != nil {
		t.Errorf("Oversub(4) rejected: %v", err)
	}
	if _, err := NewCluster(leafSpineOpts(Oversub(-1))...); err == nil {
		t.Error("Oversub(-1) accepted")
	}
}
