package ecnsim

import (
	"context"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/units"
)

// Extra value keys produced by the macroscale scenario: the hybrid engine's
// lifecycle counters and the byte split between the two service levels.
const (
	// KeyFluidStarted / KeyFluidCompleted count transfers admitted into and
	// completed by the fluid model; KeyFluidBytes is the payload it carried
	// (including the settled portion of flows later promoted to packets).
	KeyFluidStarted   = "fluid_started"
	KeyFluidCompleted = "fluid_completed"
	KeyFluidBytes     = "fluid_bytes"
	// KeyPacketBytes is the payload carried by real packets (wire view).
	KeyPacketBytes = "packet_payload_bytes"
	// KeyPromotions / KeyDemotions count port service-level transitions;
	// KeyPromotedFlows counts fluid flows converted to packets mid-flight;
	// KeyPacketRefused counts admissions sent straight to the packet path.
	KeyPromotions    = "promotions"
	KeyDemotions     = "demotions"
	KeyPromotedFlows = "promoted_flows"
	KeyPacketRefused = "packet_refused"
)

func init() {
	Register(NewScenario("macroscale",
		"10k-node leaf-spine cell under an open-loop transfer mix: the hybrid engine's home regime",
		runMacroscale))
}

// macroscaleDefaults reshapes an unshaped cluster to the scenario's home
// cell: 10,000 nodes in 250 racks of 40 under 16 spines — a scale only the
// hybrid engine can hold (the pure packet engine would need every byte as
// ~1500 B packet events). An explicitly shaped cluster (Racks >= 2) is
// honored as-is, which is what the tests and the benchmark suite use.
func macroscaleDefaults(c *Cluster) (*Cluster, error) {
	d := *c
	if d.racks <= 1 {
		d.nodes, d.racks, d.spines = 10000, 250, 16
		if err := d.validateDegrade(); err != nil {
			return nil, fmt.Errorf("ecnsim: macroscale: configured degradations do not fit the %d-rack/%d-spine cell: %w", d.racks, d.spines, err)
		}
	}
	if d.spines == 0 {
		return nil, fmt.Errorf("ecnsim: macroscale: a %d-rack fabric needs a spine tier (Spines >= 1)", d.racks)
	}
	return &d, nil
}

// macroWorkload derives the scenario's transfer mix from the builder knobs:
// the tenant phases set the open-loop horizon, FlowSize sizes the background
// transfers, and the RPC fleet knobs shape the latency probes. Everything
// else keeps the fixed DefaultMacroWorkload mix (arrival density, fan-out,
// hot-spot cadence), so the workload is a pure function of fingerprinted
// configuration.
func macroWorkload(c *Cluster) experiment.MacroWorkload {
	w := experiment.DefaultMacroWorkload()
	w.Warmup = c.warmup
	w.Measure = c.measure
	w.Drain = c.measure / 3
	w.JobBytes = units.ByteSize(c.flowSize)
	w.RPCInterval = c.rpcInterval
	w.RPCBytes = units.ByteSize(c.rpcRespSize)
	if c.rpcClients > 0 {
		w.RPCClients = c.rpcClients
	}
	return w
}

// runMacroscale drives the macro-scale open-loop harness: a stream of
// background fan-out jobs, periodic incast hot spots, and an RPC probe fleet,
// placed directly over the fabric. Under Hybrid() the uncontended majority of
// transfers runs as fluid rates and only the hot spots pay packet fidelity;
// without it every transfer is a real TCP flow (feasible only at test
// scales). Results are bit-identical at any shard or worker count.
func runMacroscale(ctx context.Context, c *Cluster) ([]Result, error) {
	d, err := macroscaleDefaults(c)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w := macroWorkload(d)
	cfg := d.experimentConfig()
	cfg.Macro = &w
	r := experiment.RunMacro(cfg, w)

	label := d.Label()
	if d.hybrid {
		label += "/hybrid"
	}
	values := map[string]float64{
		KeyJobsSubmitted:  float64(r.JobsStarted),
		KeyJobsCompleted:  float64(r.JobsCompleted),
		KeyJobP50:         r.JobP50,
		KeyJobP99:         r.JobP99,
		KeyRPCCount:       float64(r.RPCCount),
		KeyRPCP50:         r.RPCP50,
		KeyRPCP99:         r.RPCP99,
		KeyFluidStarted:   float64(r.Fluid.FluidStarted),
		KeyFluidCompleted: float64(r.Fluid.FluidCompleted),
		KeyFluidBytes:     float64(r.Fluid.FluidBytes),
		KeyPacketBytes:    float64(r.PacketPayload),
		KeyPromotions:     float64(r.Fluid.Promotions),
		KeyDemotions:      float64(r.Fluid.Demotions),
		KeyPromotedFlows:  float64(r.Fluid.PromotedFlows),
		KeyPacketRefused:  float64(r.Fluid.PacketRefused),
		KeySimEvents:      float64(r.Events),
		KeySimTime:        r.SimTime.Seconds(),
	}
	return []Result{{
		Scenario: "macroscale",
		Label:    label,
		Seed:     d.seed,
		Values:   values,
	}}, nil
}
