package ecnsim

import (
	"bytes"
	"context"
	"flag"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTenantScenariosRegistered(t *testing.T) {
	for _, want := range []string{"multijob", "tenantmix"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("scenario %q not registered (have %v)", want, Scenarios())
		}
		if Describe(want) == "" {
			t.Errorf("scenario %q has no description", want)
		}
	}
}

// tenantOpts is the CI-sized tenant configuration shared by the tests.
func tenantOpts(extra ...Option) []Option {
	return append([]Option{
		Nodes(4),
		InputSize(32 << 20),
		BlockSize(8 << 20),
		Reducers(4),
		TargetDelay(500 * time.Microsecond),
		Warmup(100 * time.Millisecond),
		Measure(1 * time.Second),
		MeasureWindow(250 * time.Millisecond),
		Seed(1),
	}, extra...)
}

// TestTenantDeterministicAcrossWorkers is the acceptance pin: multijob and
// tenantmix through Runner pools of 1, 4 and 8 workers (with seed
// replications) must produce bit-identical ResultSets.
func TestTenantDeterministicAcrossWorkers(t *testing.T) {
	jobs := func() []Job {
		return []Job{
			{Scenario: mustLookup(t, "multijob"), Cluster: mustCluster(t, tenantOpts(Queue(RED), Protect(ACKSYN))...)},
			{Scenario: mustLookup(t, "tenantmix"), Cluster: mustCluster(t, tenantOpts(FairShare(true))...)},
		}
	}
	run := func(workers int) *ResultSet {
		r := &Runner{Workers: workers, Replications: 2}
		rs, err := r.Run(context.Background(), jobs()...)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	sets := map[int]*ResultSet{1: run(1), 4: run(4), 8: run(8)}
	for _, workers := range []int{4, 8} {
		if !reflect.DeepEqual(sets[1], sets[workers]) {
			t.Fatalf("1-worker and %d-worker runs diverged", workers)
		}
		var a, b bytes.Buffer
		if err := sets[1].WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := sets[workers].WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("marshalled JSON differs between 1 and %d workers", workers)
		}
	}
	rows := sets[1].Results
	if len(rows) != 5 { // multijob's two policies + tenantmix's three setups
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if !strings.HasSuffix(rows[0].Label, "/fifo") || !strings.HasSuffix(rows[1].Label, "/fair") {
		t.Errorf("multijob labels = %q, %q — want .../fifo and .../fair", rows[0].Label, rows[1].Label)
	}
	for _, r := range rows {
		if r.Value(KeyJobsSubmitted) == 0 {
			t.Errorf("%s/%s: no jobs submitted", r.Scenario, r.Label)
		}
		if r.Value(KeyDrained) != 1 {
			t.Errorf("%s/%s: run did not drain", r.Scenario, r.Label)
		}
	}
}

// TestTenantMixDistinguishesModes pins the acceptance criterion: the
// per-window RPC P99 series must distinguish protection modes. At a tight
// marking threshold the default mode's ACK drops also starve the batch
// tier, so its throughput collapses relative to ack+syn — both signals are
// asserted.
func TestTenantMixDistinguishesModes(t *testing.T) {
	rs, err := RunScenario(context.Background(), "tenantmix",
		TestScale(), TargetDelay(100*time.Microsecond), Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Result{}
	for _, r := range rs.Results {
		byLabel[r.Label] = r
	}
	def, ok := byLabel["ecn-default"]
	if !ok {
		t.Fatalf("no ecn-default row in %v", rs.Results)
	}
	ack, ok := byLabel["ecn-ack+syn"]
	if !ok {
		t.Fatalf("no ecn-ack+syn row in %v", rs.Results)
	}
	windows := 0
	differ := false
	for i := 0; ; i++ {
		key := KeyRPCWindowP99(i)
		if _, present := def.Values[key]; !present {
			break
		}
		windows++
		if def.Value(key) != ack.Value(key) {
			differ = true
		}
	}
	if windows < 2 {
		t.Fatalf("only %d RPC P99 windows reported", windows)
	}
	if !differ {
		t.Error("per-window RPC P99 series identical across protection modes")
	}
	// The untold-truth signal: default mode's ACK drops starve the batch
	// tier while ack+syn keeps throughput.
	if def.Value(KeyThroughput) >= 0.5*ack.Value(KeyThroughput) {
		t.Errorf("default-mode throughput %g not collapsed vs ack+syn %g",
			def.Value(KeyThroughput), ack.Value(KeyThroughput))
	}
	if def.Value(KeyAckDropShare) < 0.5 {
		t.Errorf("default-mode ACK drop share %g, expected the drops to hit ACKs",
			def.Value(KeyAckDropShare))
	}
}

// TestMultiJobPoliciesDiverge pins that the two multijob rows really come
// from different schedulers at the default (contended) scale.
func TestMultiJobPoliciesDiverge(t *testing.T) {
	rs, err := RunScenario(context.Background(), "multijob",
		TestScale(), Queue(RED), Protect(ACKSYN), Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != 2 {
		t.Fatalf("rows = %d, want 2", len(rs.Results))
	}
	fifo, fair := rs.Results[0], rs.Results[1]
	if fifo.Value(KeyJobsSubmitted) != fair.Value(KeyJobsSubmitted) {
		t.Fatalf("policies saw different arrival streams")
	}
	if fifo.Value(KeyJobP50) == fair.Value(KeyJobP50) && fifo.Value(KeyJobMean) == fair.Value(KeyJobMean) {
		t.Error("FIFO and fair rows have identical job latency statistics")
	}
}

func TestTenantOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative jobs", []Option{JobArrivals(-1)}},
		{"zero arrival mean", []Option{Arrivals(PoissonArrivals, 0)}},
		{"bad arrival kind", []Option{Arrivals(ArrivalKind(9), time.Second)}},
		{"negative clients", []Option{RPCClients(-1)}},
		{"huge fleet", []Option{RPCClients(2000)}},
		{"zero rpc sizes", []Option{RPCSizes(0, 4096)}},
		{"negative warmup", []Option{Warmup(-time.Second)}},
		{"zero measure", []Option{Measure(0)}},
		{"zero window", []Option{MeasureWindow(0)}},
		{"window beyond measure", []Option{Measure(time.Second), MeasureWindow(2 * time.Second)}},
	}
	for _, c := range cases {
		if _, err := NewCluster(c.opts...); err == nil {
			t.Errorf("%s: expected NewCluster error", c.name)
		}
	}
	if _, err := NewCluster(tenantOpts(JobArrivals(3), Arrivals(FixedArrivals, 100*time.Millisecond),
		FairShare(true), RPCClients(2), RPCSizes(256, 8192), HeavyTailRPC(true))...); err != nil {
		t.Errorf("valid tenant options rejected: %v", err)
	}

	// A Measure below the default window must not demand an explicit
	// MeasureWindow: the unset window follows the phase down.
	c, err := NewCluster(Measure(200 * time.Millisecond))
	if err != nil {
		t.Fatalf("short Measure without MeasureWindow rejected: %v", err)
	}
	if w := c.workloadConfig(); w.Window != 200*time.Millisecond {
		t.Errorf("default window = %v, want clamped to the 200ms measure", w.Window)
	}
	// But an explicitly chosen window that exceeds Measure still errors.
	if _, err := NewCluster(Measure(time.Second), MeasureWindow(2*time.Second)); err == nil {
		t.Error("explicit window beyond measure accepted")
	}
}

func TestParseArrival(t *testing.T) {
	for _, c := range []struct {
		in   string
		kind ArrivalKind
		mean time.Duration
		err  bool
	}{
		{"poisson:400ms", PoissonArrivals, 400 * time.Millisecond, false},
		{"fixed:250ms", FixedArrivals, 250 * time.Millisecond, false},
		{"poisson", PoissonArrivals, 0, false},
		{"FIXED:1s", FixedArrivals, time.Second, false},
		{"burst:1s", 0, 0, true},
		{"poisson:nope", 0, 0, true},
		{"poisson:-5ms", 0, 0, true},
	} {
		kind, mean, err := ParseArrival(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseArrival(%q) error = %v, want error=%v", c.in, err, c.err)
			continue
		}
		if err == nil && (kind != c.kind || mean != c.mean) {
			t.Errorf("ParseArrival(%q) = %v/%v, want %v/%v", c.in, kind, mean, c.kind, c.mean)
		}
	}
}

func TestTenantFlags(t *testing.T) {
	f := DefaultFlags()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.BindTenant(fs)
	if err := fs.Parse([]string{"-jobs", "6", "-arrival", "fixed:100ms", "-rpc-clients", "8"}); err != nil {
		t.Fatal(err)
	}
	opts, err := f.TenantOptions()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(append(tenantOpts(), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	w := c.workloadConfig()
	if w.MaxJobs != 6 || w.MeanInterarrival != 100*time.Millisecond || w.RPCClients != 8 {
		t.Errorf("flags did not resolve: %+v", w)
	}

	// Unset flags contribute nothing (scenario defaults stay in charge).
	f2 := DefaultFlags()
	opts2, err := f2.TenantOptions()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts2) != 0 {
		t.Errorf("unset tenant flags produced %d options", len(opts2))
	}

	// A malformed -arrival surfaces from TenantOptions.
	f3 := DefaultFlags()
	f3.Arrival = "sometimes"
	if _, err := f3.TenantOptions(); err == nil {
		t.Error("malformed -arrival accepted")
	}
}

// TestSweepCarriesWorkload pins the grid/archive threading: JobArrivals
// switches the sweep onto the workload engine, ScaleOptions round-trips the
// knobs, and the JSON archive preserves them.
func TestSweepCarriesWorkload(t *testing.T) {
	s, err := NewSweep(tenantOpts(JobArrivals(2), FairShare(true), RPCClients(3))...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSweep(back.ScaleOptions()...)
	if err != nil {
		t.Fatalf("ScaleOptions round trip: %v", err)
	}
	if s2.inner.Workload == nil {
		t.Fatal("workload lost through archive + ScaleOptions")
	}
	if !reflect.DeepEqual(*s2.inner.Workload, *s.inner.Workload) {
		t.Fatalf("workload diverged:\n%+v\n%+v", *s2.inner.Workload, *s.inner.Workload)
	}

	// Without tenancy options the grid stays single-job.
	s3, err := NewSweep(tenantOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if s3.inner.Workload != nil {
		t.Error("workload attached without tenancy options")
	}

	// An RPC fleet alone (open arrivals, no job cap) also enables the
	// engine, and the uncapped workload round-trips through the archive.
	s4, err := NewSweep(tenantOpts(RPCClients(2))...)
	if err != nil {
		t.Fatal(err)
	}
	if s4.inner.Workload == nil {
		t.Fatal("workload not attached for an RPC-only tenancy")
	}
	buf.Reset()
	if err := s4.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back4, err := ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s5, err := NewSweep(back4.ScaleOptions()...)
	if err != nil {
		t.Fatalf("RPC-only ScaleOptions round trip: %v", err)
	}
	if s5.inner.Workload == nil || !reflect.DeepEqual(*s5.inner.Workload, *s4.inner.Workload) {
		t.Fatalf("RPC-only workload diverged through archive + ScaleOptions")
	}
}
