package ecnsim

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestBuiltinScenariosRegistered(t *testing.T) {
	names := Scenarios()
	for _, want := range []string{"aqmcompare", "incast", "mixed", "terasort"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("built-in scenario %q not registered (have %v)", want, names)
		}
		if Describe(want) == "" {
			t.Errorf("scenario %q has no description", want)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("Scenarios() not sorted: %v", names)
	}
}

func sortedStrings(ss []string) bool {
	for i := 1; i < len(ss); i++ {
		if ss[i-1] > ss[i] {
			return false
		}
	}
	return true
}

func TestRegistryRoundTrip(t *testing.T) {
	s := NewScenario("test-roundtrip", "a registry round-trip fixture",
		func(ctx context.Context, c *Cluster) ([]Result, error) {
			return []Result{{Scenario: "test-roundtrip", Label: c.Label(), Seed: c.Seed(),
				Values: map[string]float64{"nodes": float64(c.Nodes())}}}, nil
		})
	Register(s)

	got, ok := Lookup("test-roundtrip")
	if !ok {
		t.Fatal("registered scenario not found")
	}
	if got.Name() != "test-roundtrip" || got.Description() != "a registry round-trip fixture" {
		t.Errorf("round-trip lost identity: %q / %q", got.Name(), got.Description())
	}
	found := false
	for _, name := range Scenarios() {
		if name == "test-roundtrip" {
			found = true
		}
	}
	if !found {
		t.Error("registered scenario missing from Scenarios()")
	}

	c, err := NewCluster(Nodes(4))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := got.Run(context.Background(), c)
	if err != nil || len(rows) != 1 || rows[0].Value("nodes") != 4 {
		t.Errorf("round-tripped scenario run: rows=%v err=%v", rows, err)
	}

	if _, err := MustScenario("no-such-scenario"); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("MustScenario on unknown name: %v", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("nil scenario", func() { Register(nil) })
	expectPanic("empty name", func() {
		Register(NewScenario("", "x", nil))
	})
	expectPanic("duplicate", func() {
		s := NewScenario("test-dup", "x", nil)
		Register(s)
		Register(s)
	})
}

func TestResultSetJSONRoundTrip(t *testing.T) {
	rs := &ResultSet{Results: []Result{
		{Scenario: "terasort", Label: "droptail", Seed: 1,
			Values: map[string]float64{KeyRuntime: 1.25, KeyMarks: 42}},
		{Scenario: "incast", Label: "ecn-ack+syn", Seed: 7,
			Values: map[string]float64{KeyGoodput: 9.5e9}},
	}}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResultsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, back) {
		t.Errorf("JSON round-trip mutated the set:\n%v\n%v", rs, back)
	}
}

func TestResultSetCSV(t *testing.T) {
	rs := &ResultSet{Results: []Result{
		{Scenario: "a", Label: "x", Seed: 1, Values: map[string]float64{"m1": 1, "m2": 2}},
		{Scenario: "b", Label: "y", Seed: 2, Values: map[string]float64{"m2": 3}},
	}}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "scenario,label,seed,m1,m2" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "a,x,1,1,2" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "b,y,2,,3" {
		t.Errorf("row 2 = %q (missing key must be empty cell)", lines[2])
	}
}

func TestRenderAQMTableEmpty(t *testing.T) {
	if out := RenderAQMTable(nil); !strings.Contains(out, "no rows") {
		t.Errorf("RenderAQMTable(nil) = %q", out)
	}
}

// TestAQMCompareScenario runs the generalization grid end to end and pins
// the table's series labels (the contract the figures pipeline keys on).
func TestAQMCompareScenario(t *testing.T) {
	rs, err := RunScenario(context.Background(), "aqmcompare",
		Nodes(4), InputSize(32<<20), BlockSize(8<<20), Reducers(4),
		Queue(RED), TargetDelay(100e3))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAQMTable(rs.Results)
	for _, want := range []string{
		"droptail", "ecn-default", "ecn-ack+syn",
		"codel-default", "codel-ack+syn", "pie-default", "pie-ack+syn",
		"ecn-simplemark", "runtime", "earlydrop",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("AQM table missing %q:\n%s", want, out)
		}
	}
	if rs.Results[0].Label != "droptail" {
		t.Errorf("first row = %q, want the droptail baseline", rs.Results[0].Label)
	}
}
