package ecnsim_test

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/ecnsim"
)

// probeRuns counts executions of the registered probe scenario, so the cache
// tests can assert "no re-simulation" directly at the layer that matters.
var probeRuns atomic.Int64

func init() {
	ecnsim.Register(ecnsim.NewScenario("campaign-test-probe",
		"test-only: deterministic rows derived from the configuration, no simulation",
		func(ctx context.Context, c *ecnsim.Cluster) ([]ecnsim.Result, error) {
			probeRuns.Add(1)
			return []ecnsim.Result{{
				Scenario: "campaign-test-probe",
				Label:    c.Label(),
				Seed:     c.Seed(),
				Values: map[string]float64{
					"seed":     float64(c.Seed()),
					"nodes":    float64(c.Nodes()),
					"target_s": c.TargetDelay().Seconds(),
				},
			}}, nil
		}))
}

func probeCampaign() ecnsim.Campaign {
	return ecnsim.Campaign{
		Name:     "probe",
		Title:    "probe",
		Scenario: "campaign-test-probe",
		Common:   []ecnsim.Option{ecnsim.Nodes(4)},
		Rows: []ecnsim.CampaignRow{
			{Options: []ecnsim.Option{ecnsim.Seed(1)}},
			{Options: []ecnsim.Option{ecnsim.Seed(100)}},
			{Label: "renamed", Options: []ecnsim.Option{ecnsim.Seed(200), ecnsim.Queue(ecnsim.RED)}},
		},
		Replications: 2,
		Columns:      []ecnsim.Column{{Header: "seed", Key: "seed", Format: ecnsim.FormatCount}},
	}
}

// TestCampaignCacheShortCircuits is the acceptance test for the result
// cache: a second execution of an unchanged campaign against the same cache
// directory simulates nothing and returns identical rows.
func TestCampaignCacheShortCircuits(t *testing.T) {
	dir := t.TempDir()
	camp := probeCampaign()
	runs := len(camp.Rows) * camp.Replications

	open := func() *ecnsim.RunCache {
		c, err := ecnsim.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	probeRuns.Store(0)
	cold := open()
	first, err := (&ecnsim.CampaignRunner{Cache: cold, Workers: 2}).Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if got := probeRuns.Load(); got != int64(runs) {
		t.Fatalf("cold run simulated %d times, want %d", got, runs)
	}
	if hits, misses := cold.Stats(); hits != 0 || misses != runs {
		t.Fatalf("cold stats = (%d, %d), want (0, %d)", hits, misses, runs)
	}

	warm := open()
	second, err := (&ecnsim.CampaignRunner{Cache: warm, Workers: 2}).Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if got := probeRuns.Load(); got != int64(runs) {
		t.Fatalf("warm run re-simulated: %d total runs, want still %d", got, runs)
	}
	if hits, misses := warm.Stats(); hits != runs || misses != 0 {
		t.Fatalf("warm stats = (%d, %d), want (%d, 0)", hits, misses, runs)
	}
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatalf("cached rows differ from simulated rows:\n%v\nvs\n%v", second.Rows, first.Rows)
	}

	// Editing one row invalidates only that row's runs.
	camp.Rows[0].Options = []ecnsim.Option{ecnsim.Seed(7)}
	edited := open()
	if _, err := (&ecnsim.CampaignRunner{Cache: edited, Workers: 2}).Run(context.Background(), camp); err != nil {
		t.Fatal(err)
	}
	if hits, misses := edited.Stats(); hits != runs-camp.Replications || misses != camp.Replications {
		t.Fatalf("edited stats = (%d, %d), want (%d, %d)", hits, misses, runs-camp.Replications, camp.Replications)
	}
}

// TestCampaignDeterministicAcrossWorkers pins that worker count and the
// cache never change a row: replication merging happens in declaration
// order after the pool drains.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	camp := probeCampaign()
	var want *ecnsim.CampaignResult
	for _, workers := range []int{1, 4, 8} {
		got, err := (&ecnsim.CampaignRunner{Workers: workers}).Run(context.Background(), camp)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want.Rows, got.Rows) {
			t.Fatalf("workers=%d changed rows:\n%v\nvs\n%v", workers, got.Rows, want.Rows)
		}
	}
	// Replications averaged: row 0 runs seeds 1 and 2, so the merged
	// "seed" metric is 1.5 while the identity Seed stays the base.
	if got := want.Rows[0].Values["seed"]; got != 1.5 {
		t.Fatalf("replication average = %v, want 1.5", got)
	}
	if want.Rows[0].Seed != 1 {
		t.Fatalf("merged row seed = %d, want base seed 1", want.Rows[0].Seed)
	}
	if want.Rows[2].Label != "renamed" {
		t.Fatalf("row label override not applied: %q", want.Rows[2].Label)
	}
}

// TestRegisterCampaignReservedName pins that the registry table's name can
// never be claimed by a campaign — cmd/report would silently shadow it.
func TestRegisterCampaignReservedName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal(`RegisterCampaign accepted the reserved name "scenarios"`)
		}
	}()
	ecnsim.RegisterCampaign(ecnsim.Campaign{Name: "scenarios"})
}

func TestCampaignValidate(t *testing.T) {
	valid := probeCampaign()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid campaign rejected: %v", err)
	}
	cases := map[string]func(*ecnsim.Campaign){
		"bad name":         func(c *ecnsim.Campaign) { c.Name = "Has Space" },
		"no title":         func(c *ecnsim.Campaign) { c.Title = "" },
		"unknown scenario": func(c *ecnsim.Campaign) { c.Scenario = "no-such-scenario" },
		"no rows":          func(c *ecnsim.Campaign) { c.Rows = nil },
		"no columns":       func(c *ecnsim.Campaign) { c.Columns = nil },
		"headerless col":   func(c *ecnsim.Campaign) { c.Columns = []ecnsim.Column{{Key: "x"}} },
	}
	for name, mutate := range cases {
		c := probeCampaign()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the campaign", name)
		}
	}
}

// TestFingerprintSensitivity pins the canonicalization under the cache key:
// equal configurations agree, and every class of knob — fabric, queue,
// seed, scenario knobs, tenant knobs — moves the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	base := func(extra ...ecnsim.Option) string {
		opts := append([]ecnsim.Option{ecnsim.Nodes(8), ecnsim.Queue(ecnsim.RED)}, extra...)
		c, err := ecnsim.NewCluster(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return c.Fingerprint()
	}
	ref := base()
	if again := base(); again != ref {
		t.Fatalf("identical clusters fingerprint differently: %s vs %s", ref, again)
	}
	variants := map[string][]ecnsim.Option{
		"seed":        {ecnsim.Seed(2)},
		"nodes":       {ecnsim.Nodes(16)},
		"protect":     {ecnsim.Protect(ecnsim.ACKSYN)},
		"target":      {ecnsim.TargetDelay(time.Millisecond)},
		"buffer":      {ecnsim.Buffer(ecnsim.Deep)},
		"senders":     {ecnsim.Senders(3)},
		"flow size":   {ecnsim.FlowSize(1 << 20)},
		"rpc period":  {ecnsim.RPCInterval(5 * time.Millisecond)},
		"fair share":  {ecnsim.FairShare(true)},
		"ablation":    {ecnsim.DisableDelAck(true)},
		"degradation": {ecnsim.Racks(4), ecnsim.Spines(2), ecnsim.DegradeLink("leaf0", "spine0", 0.5)},
	}
	for name, opts := range variants {
		if got := base(opts...); got == ref {
			t.Errorf("%s option did not change the fingerprint", name)
		}
	}
}
