package ecnsim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/experiment"
	"repro/internal/units"
)

// Extra value keys produced by specific built-in scenarios.
const (
	// terasort phase breakdown.
	KeyMaps           = "maps"
	KeyMapFinish      = "map_finish_s"
	KeyShuffleStart   = "shuffle_start_s"
	KeyShuffleEnd     = "shuffle_end_s"
	KeySlowestShuffle = "slowest_shuffle_s"
	KeySlowestReducer = "slowest_reducer"

	// incast.
	KeySenders    = "senders"
	KeyFlowBytes  = "flow_bytes"
	KeyCompleted  = "completed"
	KeyCompletion = "completion_s"
	KeyGoodput    = "goodput_bps"

	// mixed.
	KeyJobRuntime = "job_runtime_s"
	KeyRPCCount   = "rpc_count"
	KeyRPCMean    = "rpc_mean_s"
	KeyRPCP50     = "rpc_p50_s"
	KeyRPCP99     = "rpc_p99_s"
	KeyRPCMax     = "rpc_max_s"
	KeyRPCFailed  = "rpc_failed"
)

// identityKeys are metrics that name things rather than measure them;
// averaging them across seed replications would produce IDs belonging to no
// run, so the Runner keeps the first replication's value instead.
var identityKeys = map[string]bool{
	KeySlowestReducer: true,
}

func init() {
	Register(NewScenario("terasort",
		"one Terasort job; the paper's three figure metrics plus a per-phase breakdown",
		runTerasort))
	Register(NewScenario("incast",
		"N synchronized senders to one receiver; the shuffle's worst-case microbenchmark",
		runIncast))
	Register(NewScenario("mixed",
		"latency-sensitive RPC probe sharing the fabric with a Terasort shuffle",
		runMixed))
	Register(NewScenario("aqmcompare",
		"RED, CoDel and PIE each with and without ACK+SYN protection, vs DropTail and SimpleMark",
		runAQMCompare))
}

// experimentValues maps the figure metrics of an internal result onto
// canonical keys.
func experimentValues(r experiment.Result) map[string]float64 {
	return map[string]float64{
		KeyTargetDelay:   r.Config.TargetDelay.Seconds(),
		KeyRuntime:       r.Runtime.Seconds(),
		KeyThroughput:    float64(r.ThroughputPerNode),
		KeyMeanLatency:   r.MeanLatency.Seconds(),
		KeyP99Latency:    r.P99Latency.Seconds(),
		KeyShuffledBytes: float64(r.ShuffledBytes),
		KeyEarlyDrops:    float64(r.EarlyDrops),
		KeyOverflowDrops: float64(r.OverflowDrops),
		KeyAckDropShare:  r.AckDropShare,
		KeyMarks:         float64(r.Marks),
		KeyRetransmits:   float64(r.Retransmits),
		KeyRTOEvents:     float64(r.RTOEvents),
		KeySynRetries:    float64(r.SynRetries),
		KeyFetchRetries:  float64(r.FetchRetries),
		KeySimEvents:     float64(r.Events),
		KeySimTime:       r.SimTime.Seconds(),
	}
}

func runTerasort(ctx context.Context, c *Cluster) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, job := experiment.RunJob(c.experimentConfig())
	values := experimentValues(r)

	var mapEnd units.Time
	for _, m := range job.Maps {
		if m.End > mapEnd {
			mapEnd = m.End
		}
	}
	lo, hi := job.ShuffleWindow()
	var worst units.Duration
	var worstID int
	for _, rd := range job.Reduces {
		if d := rd.ShuffleEnd.Sub(rd.ShuffleStart); d > worst {
			worst, worstID = d, rd.ID
		}
	}
	values[KeyMaps] = float64(len(job.Maps))
	values[KeyMapFinish] = mapEnd.Seconds()
	values[KeyShuffleStart] = lo.Seconds()
	values[KeyShuffleEnd] = hi.Seconds()
	values[KeySlowestShuffle] = worst.Seconds()
	values[KeySlowestReducer] = float64(worstID)

	return []Result{{Scenario: "terasort", Label: c.Label(), Seed: c.seed, Values: values}}, nil
}

func runIncast(ctx context.Context, c *Cluster) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := experiment.RunIncast(c.experimentConfig(), c.senders, units.ByteSize(c.flowSize))
	values := map[string]float64{
		KeyTargetDelay:   c.targetDelay.Seconds(),
		KeySenders:       float64(r.Senders),
		KeyFlowBytes:     float64(r.Flow),
		KeyCompleted:     float64(r.Completed),
		KeyCompletion:    r.Last.Seconds(),
		KeyGoodput:       float64(r.AggGoodput),
		KeyEarlyDrops:    float64(r.EarlyDrops),
		KeyOverflowDrops: float64(r.OverflowDrops),
		KeyRetransmits:   float64(r.Retransmits),
		KeyRTOEvents:     float64(r.RTOEvents),
		KeyMeanLatency:   r.MeanLatency.Seconds(),
		KeySimEvents:     float64(r.Events),
		KeySimTime:       r.SimTime.Seconds(),
	}
	return []Result{{Scenario: "incast", Label: c.Label(), Seed: c.seed, Values: values}}, nil
}

func runMixed(ctx context.Context, c *Cluster) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := experiment.RunMixedInterval(c.experimentConfig(), c.rpcInterval)
	values := map[string]float64{
		KeyTargetDelay: c.targetDelay.Seconds(),
		KeyJobRuntime:  r.JobRuntime.Seconds(),
		KeyRPCCount:    float64(r.RPCCount),
		KeyRPCMean:     r.RPCMean.Seconds(),
		KeyRPCP50:      r.RPCP50.Seconds(),
		KeyRPCP99:      r.RPCP99.Seconds(),
		KeyRPCMax:      r.RPCMax.Seconds(),
		KeyRPCFailed:   float64(r.RPCFailed),
		KeySimEvents:   float64(r.Events),
		KeySimTime:     r.SimTime.Seconds(),
	}
	return []Result{{Scenario: "mixed", Label: c.Label() + "/" + c.buffer.String(), Seed: c.seed, Values: values}}, nil
}

// runAQMCompare answers the generalization question: one row per AQM setup
// (RED, CoDel, PIE x default/ack+syn, plus SimpleMark) at the cluster's
// target delay, preceded by the DropTail baseline. The cluster's own queue
// settings are ignored; its scale, buffer, target delay and seed apply.
func runAQMCompare(ctx context.Context, c *Cluster) ([]Result, error) {
	cmp, err := experiment.CompareAQMsConfig(ctx, c.experimentConfig())
	if err != nil {
		return nil, err
	}
	rows := make([]Result, 0, 1+len(cmp.Rows))
	for _, r := range append([]experiment.Result{cmp.Baseline}, cmp.Rows...) {
		rows = append(rows, Result{
			Scenario: "aqmcompare",
			Label:    r.Config.Setup.Label,
			Seed:     c.seed,
			Values:   experimentValues(r),
		})
	}
	return rows, nil
}

// RenderAQMTable formats aqmcompare rows as the cross-AQM generalization
// table, normalized to the first (DropTail baseline) row.
func RenderAQMTable(rows []Result) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "aqmcompare: no rows\n"
	}
	base := rows[0]
	fmt.Fprintf(&b, "AQM generalization — target delay %v (normalized to %s)\n",
		base.Duration(KeyTargetDelay), base.Label)
	fmt.Fprintf(&b, "%-18s %9s %11s %9s %9s %7s\n",
		"setup", "runtime", "throughput", "latency", "earlydrop", "rto")
	norm := func(r Result, key string) float64 {
		if base.Value(key) == 0 {
			return 0
		}
		return r.Value(key) / base.Value(key)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9.3f %11.3f %9.3f %9.0f %7.0f\n",
			r.Label,
			norm(r, KeyRuntime), norm(r, KeyThroughput), norm(r, KeyMeanLatency),
			r.Value(KeyEarlyDrops), r.Value(KeyRTOEvents))
	}
	return b.String()
}
