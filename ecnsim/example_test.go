package ecnsim_test

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/ecnsim"
)

// ExampleLookup resolves scenarios by name from the registry every CLI
// keys on. ecnsim.Scenarios() lists everything registered, including any
// scenarios the importing program added itself.
func ExampleLookup() {
	builtins := []string{
		"aqmcompare", "degradedfabric", "incast", "leafspine",
		"mixed", "multijob", "tenantmix", "terasort",
	}
	for _, name := range builtins {
		if _, ok := ecnsim.Lookup(name); !ok {
			log.Fatalf("%s not registered (have %v)", name, ecnsim.Scenarios())
		}
	}
	fmt.Printf("%d built-ins: %s\n", len(builtins), strings.Join(builtins, " "))
	s, _ := ecnsim.Lookup("tenantmix")
	fmt.Println(s.Name() + ": " + s.Description())
	// Output:
	// 8 built-ins: aqmcompare degradedfabric incast leafspine mixed multijob tenantmix terasort
	// tenantmix: RPC client fleet under sustained batch load: per-window P99 across protection modes
}

// ExampleNewCluster builds a validated experiment configuration with the
// functional-options builder. Invalid combinations surface as errors here,
// not as panics mid-run.
func ExampleNewCluster() {
	c, err := ecnsim.NewCluster(
		ecnsim.Nodes(8),
		ecnsim.Queue(ecnsim.RED),
		ecnsim.Protect(ecnsim.ACKSYN),
		ecnsim.TargetDelay(100*time.Microsecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Label(), c.Nodes())

	_, err = ecnsim.NewCluster(ecnsim.Protect(ecnsim.ACKSYN)) // DropTail cannot protect
	fmt.Println(err)
	// Output:
	// ecn-ack+syn 8
	// ecnsim: protection mode ack+syn requires an AQM queue (red|codel|pie), not droptail
}

// ExampleCampaign declares and executes a small measurement campaign — the
// mechanism behind every generated table in EXPERIMENTS.md. Rows are option
// cells over one scenario; columns map result metrics onto rendered cells;
// cmd/report runs the registered book and splices the tables into the docs.
func ExampleCampaign() {
	camp := ecnsim.Campaign{
		Name:     "quickstart",
		Title:    "DropTail vs simple marking",
		Scenario: "terasort",
		Common: []ecnsim.Option{
			ecnsim.Nodes(4),
			ecnsim.InputSize(16 << 20), // 16 MiB: example-sized
			ecnsim.BlockSize(4 << 20),
			ecnsim.Reducers(4),
		},
		Rows: []ecnsim.CampaignRow{
			{}, // the DropTail default
			{Options: []ecnsim.Option{
				ecnsim.Queue(ecnsim.SimpleMark),
				ecnsim.TargetDelay(100 * time.Microsecond),
			}},
		},
		Columns: []ecnsim.Column{
			{Header: "runtime", Key: ecnsim.KeyRuntime, Format: ecnsim.FormatSeconds},
			{Header: "vs droptail", Key: ecnsim.KeyRuntime, Norm: true},
		},
	}
	cr, err := (&ecnsim.CampaignRunner{Workers: 2}).Run(context.Background(), camp)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range cr.Rows {
		fmt.Printf("%s ran=%v\n", r.Label, r.Duration(ecnsim.KeyRuntime) > 0)
	}
	// The first row is its own normalization baseline, so its "vs droptail"
	// cell is exactly 1.00× in every regeneration.
	fmt.Println(camp.Columns[1].Cell(cr.Rows[0], cr.Rows[0]))
	// Output:
	// droptail ran=true
	// ecn-simplemark ran=true
	// 1.00×
}

// ExampleRunner_Run executes a registered scenario over a worker pool.
// Results are deterministic in (options, seed) no matter how many workers
// run the pool.
func ExampleRunner_Run() {
	scenario, err := ecnsim.MustScenario("terasort")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := ecnsim.NewCluster(
		ecnsim.Nodes(4),
		ecnsim.InputSize(16<<20), // 16 MiB: example-sized
		ecnsim.BlockSize(4<<20),
		ecnsim.Reducers(4),
		ecnsim.Seed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	runner := &ecnsim.Runner{Workers: 2, Replications: 2}
	rs, err := runner.Run(context.Background(), ecnsim.Job{Scenario: scenario, Cluster: cluster})
	if err != nil {
		log.Fatal(err)
	}
	r := rs.Results[0]
	fmt.Printf("%s %s rows=%d runtime>0=%v\n",
		r.Scenario, r.Label, len(rs.Results), r.Duration(ecnsim.KeyRuntime) > 0)
	// Output:
	// terasort droptail rows=1 runtime>0=true
}
