package ecnsim

import "time"

// The campaign book: one registered campaign per built-in scenario, so every
// scenario ships with a documented, regenerable results table. cmd/report
// executes this book and splices the tables into EXPERIMENTS.md/README.md
// between "<!-- report:NAME -->" markers; the registry-vs-docs drift test
// fails if a scenario is missing from the book.
//
// Scales: Common options describe the full-pressure table (the paper's
// testbed shape where it applies); Quick options shrink each run to the
// tinyScale the unit tests use (seconds of wall time), which is the scale of
// the committed documentation tables and the CI drift gate.

// quickScale is the shared quick-mode shrink for the Terasort-shaped
// campaigns. It matches the experiment tests' pressure scale — the smallest
// shuffle that sustains enough congestion for the paper's comparative shapes
// (a tiny shuffle doesn't stress the AQM, and the tables would contradict
// their own captions).
func quickScale() []Option {
	return []Option{
		Nodes(8), InputSize(256 << 20), BlockSize(32 << 20), Reducers(16),
	}
}

func init() {
	figureCols := []Column{
		{Header: "runtime", Key: KeyRuntime, Format: FormatSeconds},
		{Header: "vs row 1", Key: KeyRuntime, Norm: true},
		{Header: "tput/node", Key: KeyThroughput, Format: FormatBandwidth},
		{Header: "mean lat", Key: KeyMeanLatency, Format: FormatSeconds},
		{Header: "early drops", Key: KeyEarlyDrops, Format: FormatCount},
		{Header: "RTOs", Key: KeyRTOEvents, Format: FormatCount},
	}

	RegisterCampaign(Campaign{
		Name:     "terasort",
		Scenario: "terasort",
		Title:    "Terasort — the untold cost of default-mode ECN, and its repair",
		Note: "RED at a tight 100 µs marking threshold. Default mode early-drops the " +
			"unmarkable ACKs/SYNs and throws the AQM's win away — no faster than DropTail — " +
			"while ACK+SYN protection and true simple marking finish 2–3× sooner at a " +
			"fraction of the latency.",
		Common: []Option{PaperScale(), TargetDelay(100 * time.Microsecond)},
		Quick:  quickScale(),
		Rows: []CampaignRow{
			{Options: []Option{Queue(DropTail)}},
			{Options: []Option{Queue(RED)}},
			{Options: []Option{Queue(RED), Protect(ACKSYN)}},
			{Options: []Option{Queue(SimpleMark)}},
		},
		Columns: figureCols,
	})

	RegisterCampaign(Campaign{
		Name:     "incast",
		Scenario: "incast",
		Title:    "Incast — synchronized senders into one receiver",
		Note: "The shuffle's worst-case microbenchmark: synchronized flows into one egress " +
			"queue. DropTail suffers classic incast collapse — correlated losses decay into " +
			"RTO-bound recovery — while marking absorbs the burst. At this fan-in ECN never " +
			"drops an ACK, so default and protected modes tie; the non-ECT bias needs the " +
			"sustained shuffle above.",
		Common: []Option{Nodes(16), FlowSize(4 << 20), TargetDelay(100 * time.Microsecond)},
		Quick:  []Option{Nodes(8), FlowSize(1 << 20)},
		Rows: []CampaignRow{
			{Options: []Option{Queue(DropTail)}},
			{Options: []Option{Queue(RED)}},
			{Options: []Option{Queue(RED), Protect(ACKSYN)}},
		},
		Columns: []Column{
			{Header: "completion", Key: KeyCompletion, Format: FormatSeconds},
			{Header: "vs row 1", Key: KeyCompletion, Norm: true},
			{Header: "agg goodput", Key: KeyGoodput, Format: FormatBandwidth},
			{Header: "retransmits", Key: KeyRetransmits, Format: FormatCount},
			{Header: "RTOs", Key: KeyRTOEvents, Format: FormatCount},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "mixed",
		Scenario: "mixed",
		Title:    "Mixed cluster — a latency-sensitive RPC probe beside the shuffle",
		Note: "The paper's motivating bufferbloat scenario: deep DropTail buffers drown the " +
			"probe's tail; marking keeps the queue — and the probe's P99 — short.",
		Common: []Option{PaperScale(), TargetDelay(100 * time.Microsecond), RPCInterval(2 * time.Millisecond)},
		// The bufferbloat contrast is sharpest on a small cluster: one probe
		// against a shuffle that fits the switch buffer (the scale the mixed
		// regression tests pin).
		Quick: []Option{Nodes(4), InputSize(64 << 20), BlockSize(16 << 20), Reducers(8)},
		Rows: []CampaignRow{
			{Options: []Option{Queue(DropTail)}},
			{Options: []Option{Queue(DropTail), Buffer(Deep)}},
			{Options: []Option{Queue(SimpleMark)}},
			{Options: []Option{Queue(SimpleMark), Buffer(Deep)}},
		},
		Columns: []Column{
			{Header: "job runtime", Key: KeyJobRuntime, Format: FormatSeconds},
			{Header: "RPCs", Key: KeyRPCCount, Format: FormatCount},
			{Header: "RPC p50", Key: KeyRPCP50, Format: FormatSeconds},
			{Header: "RPC p99", Key: KeyRPCP99, Format: FormatSeconds},
			{Header: "RPC max", Key: KeyRPCMax, Format: FormatSeconds},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "aqmcompare",
		Scenario: "aqmcompare",
		Title:    "AQM generalization — the non-ECT bias is not RED-specific",
		Note: "One row per setup, normalized to the DropTail baseline. Every AQM's default " +
			"mode early-drops only what it cannot mark; every ack+syn row shows the repair.",
		Common: []Option{PaperScale(), TargetDelay(100 * time.Microsecond)},
		Quick:  quickScale(),
		Rows: []CampaignRow{
			{}, // the scenario enumerates the setups itself
		},
		Columns: figureCols,
	})

	RegisterCampaign(Campaign{
		Name:     "leafspine",
		Scenario: "leafspine",
		Title:    "Leaf-spine — the cross-rack shuffle over ECMP, and where it queues",
		Note: "Four racks under two spines (2:1 oversubscription). The per-tier occupancy " +
			"columns locate the standing queues: the oversubscribed core, not the edge.",
		Common: []Option{PaperScale(), Racks(4), Spines(2), TargetDelay(500 * time.Microsecond)},
		Quick:  append(quickScale(), Nodes(8), Racks(4), Spines(2)),
		Rows: []CampaignRow{
			{Options: []Option{Queue(DropTail)}},
			{Options: []Option{Queue(RED), Protect(ACKSYN)}},
		},
		Columns: []Column{
			{Header: "runtime", Key: KeyRuntime, Format: FormatSeconds},
			{Header: "tput/node", Key: KeyThroughput, Format: FormatBandwidth},
			{Header: "host-up occ", Key: KeyHostUpOcc, Format: FormatFloat},
			{Header: "edge occ", Key: KeyEdgeOcc, Format: FormatFloat},
			{Header: "core-up occ", Key: KeyCoreUpOcc, Format: FormatFloat},
			{Header: "core-down occ", Key: KeyCoreDownOcc, Format: FormatFloat},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "degradedfabric",
		Scenario: "degradedfabric",
		Title:    "Degraded fabric — protection under asymmetric link health",
		Note: "One leaf→spine uplink derated to 25% of its built rate; ECMP keeps hashing " +
			"flows onto the sick link. Default-mode ECN pays catastrophically (its ACKs die " +
			"on the hot queue); ack+syn stays near the healthy-fabric runtime.",
		Common: []Option{PaperScale(), Racks(4), Spines(2), TargetDelay(500 * time.Microsecond)},
		Quick:  append(quickScale(), Nodes(8), Racks(4), Spines(2)),
		Rows: []CampaignRow{
			{}, // the scenario runs droptail / default / ack+syn itself
		},
		Columns: []Column{
			{Header: "runtime", Key: KeyRuntime, Format: FormatSeconds},
			{Header: "vs row 1", Key: KeyRuntime, Norm: true},
			{Header: "mean lat", Key: KeyMeanLatency, Format: FormatSeconds},
			{Header: "early drops", Key: KeyEarlyDrops, Format: FormatCount},
			{Header: "RTOs", Key: KeyRTOEvents, Format: FormatCount},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "hotspot",
		Scenario: "hotspot",
		Title:    "Hot spot — switch-originated notifications vs end-to-end ECN",
		Note: "The degradedfabric sickness (one leaf→spine uplink at 25%) under ECN-RED, with " +
			"the switch itself reacting: congestion notifications re-salt ECMP off the hot " +
			"port (reroute), gate the offending sources (throttle), or both. Reaction at " +
			"the switch beats waiting a full RTT for marks to reach the senders.",
		Common: []Option{PaperScale(), Racks(4), Spines(2), Queue(RED), TargetDelay(500 * time.Microsecond)},
		Quick:  append(quickScale(), Nodes(8), Racks(4), Spines(2)),
		Rows: []CampaignRow{
			{Label: "ecn-plain"},
			{Label: "reroute", Options: []Option{Reroute()}},
			{Label: "throttle", Options: []Option{Throttle()}},
			{Label: "reroute+throttle", Options: []Option{Notify()}},
		},
		Columns: []Column{
			{Header: "runtime", Key: KeyRuntime, Format: FormatSeconds},
			{Header: "vs plain", Key: KeyRuntime, Norm: true},
			{Header: "p99 lat", Key: KeyP99Latency, Format: FormatSeconds},
			{Header: "rerouted", Key: KeyRerouted, Format: FormatCount},
			{Header: "throttles", Key: KeyThrottles, Format: FormatCount},
			{Header: "RTOs", Key: KeyRTOEvents, Format: FormatCount},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "multijob",
		Scenario: "multijob",
		Title:    "Multi-job — FIFO vs fair-share under open-loop arrivals",
		Note: "The same seeded arrival stream under both slot-scheduling policies. FIFO " +
			"hands every freed slot to the earliest-admitted job, so an arriving small job " +
			"waits out whole reduce waves; fair-share grants slots to the job running the " +
			"fewest tasks and nearly halves the completed-job P99.",
		Common: []Option{
			PaperScale(), Queue(RED), Protect(ACKSYN), TargetDelay(500 * time.Microsecond),
			Arrivals(PoissonArrivals, 150*time.Millisecond),
		},
		// Quick mode provokes contention the way the tenant policy test
		// does: dense fixed arrivals on a 4-node cluster whose large jobs
		// want every reduce slot, so small jobs only run early if the
		// policy grants them freed slots.
		Quick: []Option{
			Nodes(4), InputSize(64 << 20), BlockSize(8 << 20), Reducers(8),
			Arrivals(FixedArrivals, 30*time.Millisecond),
			Warmup(100 * time.Millisecond), Measure(1 * time.Second), MeasureWindow(250 * time.Millisecond),
		},
		Rows: []CampaignRow{
			{}, // the scenario runs fifo and fair itself
		},
		Columns: []Column{
			{Header: "jobs done", Key: KeyJobsCompleted, Format: FormatCount},
			{Header: "job mean", Key: KeyJobMean, Format: FormatSeconds},
			{Header: "job p50", Key: KeyJobP50, Format: FormatSeconds},
			{Header: "job p99", Key: KeyJobP99, Format: FormatSeconds},
			{Header: "makespan", Key: KeyMakespan, Format: FormatSeconds},
			{Header: "drained", Key: KeyDrained, Format: FormatBool},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "tenantmix",
		Scenario: "tenantmix",
		Title:    "Tenant mix — the SLO view of the untold truth",
		Note: "An open-loop RPC fleet beside sustained batch load. Read the throughput and " +
			"P99 columns together: default-mode ECN buys its service latency by starving " +
			"the batch tier through ACK drops; ack+syn keeps both tiers healthy.",
		Common: []Option{
			PaperScale(), RPCClients(4), TargetDelay(100 * time.Microsecond),
			Arrivals(PoissonArrivals, 150*time.Millisecond), FairShare(true),
		},
		// Quick mode is examples/tenantmix's exact configuration, where the
		// batch-starvation contrast is unmistakable.
		Quick: []Option{
			Nodes(8), InputSize(128 << 20), BlockSize(0), Reducers(8),
			Measure(2 * time.Second), MeasureWindow(500 * time.Millisecond),
		},
		Rows: []CampaignRow{
			{}, // the scenario runs droptail / ecn-default / ecn-ack+syn itself
		},
		Columns: []Column{
			{Header: "batch tput/node", Key: KeyThroughput, Format: FormatBandwidth},
			{Header: "jobs done", Key: KeyJobsCompleted, Format: FormatCount},
			{Header: "RPCs", Key: KeyRPCCount, Format: FormatCount},
			{Header: "RPC p50", Key: KeyRPCP50, Format: FormatSeconds},
			{Header: "RPC p99", Key: KeyRPCP99, Format: FormatSeconds},
			{Header: "ACK drop share", Key: KeyAckDropShare, Format: FormatFloat},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "incast-tail",
		Scenario: "incast",
		Title:    "Incast tail — MinRTO × fan-in × buffer depth",
		Note: "The tail of a synchronized fan-in is recovery-bound, not transfer-bound: " +
			"with shallow DropTail buffers the correlated losses decay into RTO recovery and " +
			"the 200 ms default MinRTO sets the completion time almost by itself, while a " +
			"datacenter-tuned 10 ms MinRTO collapses the tail an order of magnitude. Deep " +
			"buffers absorb the burst instead and decouple the tail from the timer.",
		Common: []Option{Nodes(24), FlowSize(4 << 20), TargetDelay(100 * time.Microsecond)},
		Quick:  []Option{FlowSize(1 << 20)},
		Rows: []CampaignRow{
			{Label: "rto=200ms/8-in/shallow", Options: []Option{Senders(8)}},
			{Label: "rto=200ms/8-in/deep", Options: []Option{Senders(8), Buffer(Deep)}},
			{Label: "rto=200ms/16-in/shallow", Options: []Option{Senders(16)}},
			{Label: "rto=200ms/16-in/deep", Options: []Option{Senders(16), Buffer(Deep)}},
			{Label: "rto=10ms/8-in/shallow", Options: []Option{MinRTO(10 * time.Millisecond), Senders(8)}},
			{Label: "rto=10ms/8-in/deep", Options: []Option{MinRTO(10 * time.Millisecond), Senders(8), Buffer(Deep)}},
			{Label: "rto=10ms/16-in/shallow", Options: []Option{MinRTO(10 * time.Millisecond), Senders(16)}},
			{Label: "rto=10ms/16-in/deep", Options: []Option{MinRTO(10 * time.Millisecond), Senders(16), Buffer(Deep)}},
		},
		Columns: []Column{
			{Header: "completion", Key: KeyCompletion, Format: FormatSeconds},
			{Header: "vs row 1", Key: KeyCompletion, Norm: true},
			{Header: "agg goodput", Key: KeyGoodput, Format: FormatBandwidth},
			{Header: "retransmits", Key: KeyRetransmits, Format: FormatCount},
			{Header: "RTOs", Key: KeyRTOEvents, Format: FormatCount},
		},
	})

	RegisterCampaign(Campaign{
		Name:     "macroscale",
		Scenario: "macroscale",
		Title:    "Macroscale — the hybrid engine over a 10k-node cell",
		Note: "An open-loop transfer mix (background fan-outs, periodic incast hot spots, an " +
			"RPC probe fleet) at a scale the packet engine cannot hold. The threshold rows " +
			"show the fidelity dial: lower thresholds push more bytes to packet level and " +
			"buy nothing on the uncontended majority; the event column is the price.",
		Common: []Option{Queue(RED), Protect(ACKSYN), TargetDelay(500 * time.Microsecond), Hybrid()},
		// Quick scale is the determinism matrix's cell: 64 nodes in 8 racks
		// under 4 spines, a 40 ms measurement — small enough for the CI
		// drift gate to re-simulate, hot-spotted enough to exercise both
		// service levels.
		Quick: []Option{
			Nodes(64), Racks(8), Spines(4), FlowSize(512 << 10),
			Warmup(5 * time.Millisecond), Measure(40 * time.Millisecond),
		},
		Rows: []CampaignRow{
			{Label: "hybrid u=0.9"},
			{Label: "hybrid u=0.5", Options: []Option{FluidThreshold(0.5)}},
			{Label: "hybrid u=1.0", Options: []Option{FluidThreshold(1)}},
		},
		Columns: []Column{
			{Header: "jobs done", Key: KeyJobsCompleted, Format: FormatCount},
			{Header: "job p99", Key: KeyJobP99, Format: FormatSeconds},
			{Header: "RPC p99", Key: KeyRPCP99, Format: FormatSeconds},
			{Header: "fluid bytes", Key: KeyFluidBytes, Format: FormatBytes},
			{Header: "packet bytes", Key: KeyPacketBytes, Format: FormatBytes},
			{Header: "promotions", Key: KeyPromotions, Format: FormatCount},
			{Header: "events", Key: KeySimEvents, Format: FormatCount},
		},
	})
}
