package ecnsim

import (
	"context"
	"fmt"

	"repro/internal/pool"
)

// Job pairs a scenario with the cluster configuration to run it over.
type Job struct {
	Scenario Scenario
	Cluster  *Cluster
}

// Runner executes jobs over a bounded worker pool. Each job expands into
// Replications single-seed runs (consecutive seeds starting at the cluster's
// base seed), every run is an independent single-threaded simulation, and the
// replications of a job are averaged metric-by-metric into its final rows.
//
// Results are deterministic in (jobs, Replications): aggregation happens in
// job-then-seed order after the pool drains, so the worker count never
// changes a single output bit.
type Runner struct {
	// Workers bounds concurrent simulations. 0 means GOMAXPROCS; 1 forces
	// serial execution.
	Workers int
	// Replications averages each job over this many consecutive seeds
	// (0 or 1 = single run).
	Replications int
	// Progress, if non-nil, is called before each single-seed run with the
	// number of runs already completed, the total, and the run's identity.
	// It is invoked under the runner's dispatch lock and must not block.
	Progress func(done, total int, label string)
}

// Run executes every job and returns their rows concatenated in job order.
// If ctx is cancelled, in-flight simulations finish, no further runs start,
// and ctx.Err() is returned. The first scenario error (in run order) is
// returned otherwise.
func (r *Runner) Run(ctx context.Context, jobs ...Job) (*ResultSet, error) {
	for i, j := range jobs {
		if j.Scenario == nil {
			return nil, fmt.Errorf("ecnsim: job %d has no scenario", i)
		}
		if j.Cluster == nil {
			return nil, fmt.Errorf("ecnsim: job %d (%s) has no cluster", i, j.Scenario.Name())
		}
	}
	reps := r.Replications
	if reps < 1 {
		reps = 1
	}
	total := len(jobs) * reps
	rows := make([][]Result, total)
	errs := make([]error, total)

	p := &pool.Pool{Workers: r.Workers}
	if r.Progress != nil {
		p.OnStart = func(i, done int) {
			job := jobs[i/reps]
			cl := job.Cluster.withSeed(job.Cluster.seed + uint64(i%reps))
			r.Progress(done, total, job.Scenario.Name()+" "+cl.String())
		}
	}
	poolErr := p.Run(ctx, total, func(i int) {
		job := jobs[i/reps]
		cl := job.Cluster.withSeed(job.Cluster.seed + uint64(i%reps))
		rows[i], errs[i] = job.Scenario.Run(ctx, cl)
	})
	if poolErr != nil {
		return nil, poolErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &ResultSet{}
	for j := range jobs {
		merged, err := mergeReplications(rows[j*reps : (j+1)*reps])
		if err != nil {
			return nil, fmt.Errorf("ecnsim: job %d (%s): %w", j, jobs[j].Scenario.Name(), err)
		}
		out.Results = append(out.Results, merged...)
	}
	return out, nil
}

// mergeReplications averages the rows of one job's replications. Replication
// k must produce the same row shape (count, labels, keys) as replication 0;
// the merged rows keep replication 0's identity (scenario, label, base seed).
// Identity-valued metrics (see identityKeys) are not averaged — they keep
// replication 0's value.
func mergeReplications(reps [][]Result) ([]Result, error) {
	base := reps[0]
	if len(reps) == 1 {
		return base, nil
	}
	out := make([]Result, len(base))
	for i, row := range base {
		avg := Result{Scenario: row.Scenario, Label: row.Label, Seed: row.Seed,
			Values: make(map[string]float64, len(row.Values))}
		for k, v := range row.Values {
			avg.Values[k] = v
		}
		for _, rep := range reps[1:] {
			if len(rep) != len(base) {
				return nil, fmt.Errorf("replication produced %d rows, want %d", len(rep), len(base))
			}
			other := rep[i]
			if other.Label != row.Label || len(other.Values) != len(row.Values) {
				return nil, fmt.Errorf("replication row %d mismatch: %q vs %q", i, other.Label, row.Label)
			}
			for k, v := range other.Values {
				if _, ok := avg.Values[k]; !ok {
					return nil, fmt.Errorf("replication row %d has unexpected key %q", i, k)
				}
				avg.Values[k] += v
			}
		}
		n := float64(len(reps))
		for k := range avg.Values {
			if identityKeys[k] {
				avg.Values[k] = row.Values[k]
				continue
			}
			avg.Values[k] /= n
		}
		out[i] = avg
	}
	return out, nil
}

// RunScenario is the one-call form: build a cluster from options, look up a
// registered scenario, and run it once on a default Runner.
func RunScenario(ctx context.Context, scenario string, opts ...Option) (*ResultSet, error) {
	s, err := MustScenario(scenario)
	if err != nil {
		return nil, err
	}
	c, err := NewCluster(opts...)
	if err != nil {
		return nil, err
	}
	r := &Runner{}
	return r.Run(ctx, Job{Scenario: s, Cluster: c})
}
