package ecnsim

import (
	"flag"
	"time"
)

// FlagSet is the shared CLI surface: every command binds the same flag names
// with the same parsing, so -queue, -input, -target and friends behave
// identically across binaries. Set fields before Bind to change a command's
// defaults; call Options after flag parsing to resolve the values.
type FlagSet struct {
	Queue     string        // -queue: droptail | red | simplemark | codel | pie
	Mode      string        // -mode: default | ece-bit | ack+syn
	Transport string        // -transport: tcp | tcp-ecn | dctcp ("" = auto by queue)
	BufferStr string        // -buffer: shallow | deep
	Target    time.Duration // -target
	Nodes     int           // -nodes
	Racks     int           // -racks
	Spines    int           // -spines
	Input     string        // -input, e.g. "1GiB"
	Block     string        // -block, e.g. "64MiB" ("" = input/nodes)
	Reducers  int           // -reducers
	SeedVal   uint64        // -seed

	// Multi-tenant workload flags (0 / "" = scenario defaults).
	Jobs       int    // -jobs: max batch jobs the arrival process admits
	Arrival    string // -arrival: "poisson:400ms" | "fixed:250ms" | "poisson"
	RPCClients int    // -rpc-clients: open-loop RPC fleet size
}

// DefaultFlags returns the paper-testbed defaults (16 nodes, 1 GiB Terasort,
// DropTail, shallow buffers, 500 µs target).
func DefaultFlags() *FlagSet {
	return &FlagSet{
		Queue:     "droptail",
		Mode:      "default",
		Transport: "",
		BufferStr: "shallow",
		Target:    500 * time.Microsecond,
		Nodes:     16,
		Racks:     1,
		Spines:    0,
		Input:     "1GiB",
		Block:     "64MiB",
		Reducers:  32,
		SeedVal:   1,
	}
}

// Bind registers the shared flags on fs with the FlagSet's current values as
// defaults.
func (f *FlagSet) Bind(fs *flag.FlagSet) {
	fs.StringVar(&f.Queue, "queue", f.Queue, "queue discipline: droptail | red | simplemark | codel | pie")
	fs.StringVar(&f.Mode, "mode", f.Mode, "AQM protection mode: default | ece-bit | ack+syn")
	fs.StringVar(&f.Transport, "transport", f.Transport, "tcp | tcp-ecn | dctcp (default: tcp for droptail, tcp-ecn otherwise)")
	f.BindBuffer(fs)
	f.BindWorkload(fs)
}

// BindBuffer registers only the -buffer flag, for commands that honor the
// buffer depth but fix the queue discipline (like aqmcompare, which
// enumerates the disciplines itself).
func (f *FlagSet) BindBuffer(fs *flag.FlagSet) {
	fs.StringVar(&f.BufferStr, "buffer", f.BufferStr, "switch buffer depth: shallow (1MB/port) | deep (10MB/port)")
}

// BindWorkload registers only the workload/scale flags — for commands (like
// queueviz) whose queue configuration is fixed by what they visualize, so no
// flag is accepted and then silently ignored.
func (f *FlagSet) BindWorkload(fs *flag.FlagSet) {
	fs.DurationVar(&f.Target, "target", f.Target, "AQM target delay")
	fs.IntVar(&f.Nodes, "nodes", f.Nodes, "cluster size")
	f.BindFabric(fs)
	fs.StringVar(&f.Input, "input", f.Input, "Terasort input size (e.g. 1GiB)")
	fs.StringVar(&f.Block, "block", f.Block, "HDFS block size (empty = input/nodes)")
	fs.IntVar(&f.Reducers, "reducers", f.Reducers, "reduce tasks")
	fs.Uint64Var(&f.SeedVal, "seed", f.SeedVal, "simulation seed")
}

// BindFabric registers only the fabric-shape flags (-racks, -spines) — for
// commands like sweep and figures whose workload is fixed by a named scale
// but whose fabric should still be selectable from the CLI. BindWorkload
// includes these.
func (f *FlagSet) BindFabric(fs *flag.FlagSet) {
	fs.IntVar(&f.Racks, "racks", f.Racks, "racks (0/1 = single-switch star)")
	fs.IntVar(&f.Spines, "spines", f.Spines, "spine switches above the racks (0 = no spine tier; needs -racks >= 2)")
}

// FabricOptions resolves only the fabric-shape flags into builder options.
func (f *FlagSet) FabricOptions() []Option {
	return []Option{Racks(f.Racks), Spines(f.Spines)}
}

// BindTenant registers the multi-tenant workload flags (-jobs, -arrival,
// -rpc-clients) — for commands that can drive the workload engine (sweep,
// figures, the tenant examples). Zero values defer to scenario defaults.
// On grid commands (sweep, figures), -jobs or -rpc-clients enables the
// engine; -arrival alone only parameterizes it.
func (f *FlagSet) BindTenant(fs *flag.FlagSet) {
	fs.IntVar(&f.Jobs, "jobs", f.Jobs, "max batch jobs the open-loop arrival process admits (enables the multi-tenant grid; 0 = scenario default)")
	fs.StringVar(&f.Arrival, "arrival", f.Arrival, `job arrival process, "poisson:400ms" or "fixed:250ms" (takes effect with -jobs/-rpc-clients or a tenant scenario)`)
	fs.IntVar(&f.RPCClients, "rpc-clients", f.RPCClients, "open-loop RPC fleet size (enables the multi-tenant grid; 0 = scenario default)")
}

// TenantOptions resolves the tenant flags into builder options, reporting a
// malformed -arrival spec. Unset flags contribute no options, so scenario
// defaults still apply.
func (f *FlagSet) TenantOptions() ([]Option, error) {
	var opts []Option
	if f.Jobs > 0 {
		opts = append(opts, JobArrivals(f.Jobs))
	}
	if f.Arrival != "" {
		kind, mean, err := ParseArrival(f.Arrival)
		if err != nil {
			return nil, err
		}
		if mean > 0 {
			opts = append(opts, Arrivals(kind, mean))
		} else {
			// Bare kind ("-arrival fixed"): switch the distribution only,
			// leaving the builder's default mean in force.
			opts = append(opts, func(c *Cluster) error { c.arrivalKind = kind; return nil })
		}
	}
	if f.RPCClients > 0 {
		opts = append(opts, RPCClients(f.RPCClients))
	}
	return opts, nil
}

// Options resolves the parsed flag values into builder options, reporting
// the first malformed value.
func (f *FlagSet) Options() ([]Option, error) {
	queue, err := ParseQueue(f.Queue)
	if err != nil {
		return nil, err
	}
	protect, err := ParseProtect(f.Mode)
	if err != nil {
		return nil, err
	}
	buffer, err := ParseBuffer(f.BufferStr)
	if err != nil {
		return nil, err
	}
	input, err := ParseSize(f.Input)
	if err != nil {
		return nil, err
	}
	var block int64
	if f.Block != "" {
		if block, err = ParseSize(f.Block); err != nil {
			return nil, err
		}
	}
	opts := []Option{
		Queue(queue),
		Buffer(buffer),
		TargetDelay(f.Target),
		Nodes(f.Nodes),
		Racks(f.Racks),
		Spines(f.Spines),
		InputSize(input),
		BlockSize(block),
		Reducers(f.Reducers),
		Seed(f.SeedVal),
	}
	if protect != NoProtection {
		opts = append(opts, Protect(protect))
	}
	if f.Transport != "" {
		transport, err := ParseTransport(f.Transport)
		if err != nil {
			return nil, err
		}
		opts = append(opts, Transport(transport))
	}
	return opts, nil
}
