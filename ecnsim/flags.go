package ecnsim

import (
	"flag"
	"time"
)

// FlagGroup selects which blocks of the shared CLI surface a FlagBinder
// registers. Groups compose with |; every binder implicitly includes
// FlagsRun, so -shards behaves identically across binaries.
type FlagGroup uint

// Flag groups.
const (
	// FlagsQueue is the queue configuration: -queue, -mode, -transport.
	FlagsQueue FlagGroup = 1 << iota
	// FlagsBuffer is the switch buffer depth: -buffer.
	FlagsBuffer
	// FlagsFabric is the fabric shape: -racks, -spines.
	FlagsFabric
	// FlagsWorkload is the Terasort workload: -target, -nodes, -input,
	// -block, -reducers.
	FlagsWorkload
	// FlagsSeed is the simulation seed: -seed.
	FlagsSeed
	// FlagsTenant is the multi-tenant workload engine: -jobs, -arrival,
	// -rpc-clients.
	FlagsTenant
	// FlagsHybrid is the hybrid fluid/packet engine: -hybrid,
	// -fluid-threshold.
	FlagsHybrid
	// FlagsNotify is the switch-originated congestion-notification surface:
	// -notify, -notify-threshold, -reroute, -throttle.
	FlagsNotify
	// FlagsRun is the run-execution surface: -shards. Every FlagBinder
	// includes it whether or not it is requested — how a run executes is
	// never a per-binary decision.
	FlagsRun
)

// FlagSet is the shared CLI surface: every command binds the same flag names
// with the same parsing, so -queue, -input, -target and friends behave
// identically across binaries. Set fields before binding to change a
// command's defaults; resolve the values after flag parsing.
//
// Commands compose the surface through a FlagBinder (NewFlagBinder), which
// binds exactly the groups the command honors — no flag is accepted and then
// silently ignored.
type FlagSet struct {
	Queue     string        // -queue: droptail | red | simplemark | codel | pie
	Mode      string        // -mode: default | ece-bit | ack+syn
	Transport string        // -transport: tcp | tcp-ecn | dctcp ("" = auto by queue)
	BufferStr string        // -buffer: shallow | deep
	Target    time.Duration // -target
	Nodes     int           // -nodes
	Racks     int           // -racks
	Spines    int           // -spines
	Input     string        // -input, e.g. "1GiB"
	Block     string        // -block, e.g. "64MiB" ("" = input/nodes)
	Reducers  int           // -reducers
	SeedVal   uint64        // -seed

	// Shards is the event-loop shard request (-shards): 1 = serial,
	// 0 = auto (sized to the machine on leaf-spine fabrics), n > 1 =
	// explicit. Results are bit-identical at every value.
	Shards int

	// Multi-tenant workload flags (0 / "" = scenario defaults).
	Jobs       int    // -jobs: max batch jobs the arrival process admits
	Arrival    string // -arrival: "poisson:400ms" | "fixed:250ms" | "poisson"
	RPCClients int    // -rpc-clients: open-loop RPC fleet size

	// Hybrid engine flags.
	Hybrid         bool    // -hybrid: enable the fluid/packet hybrid engine
	FluidThreshold float64 // -fluid-threshold: fluid utilization threshold in [0, 1]

	// Congestion-notification flags.
	Notify          bool // -notify: enable switch-originated notifications (both mechanisms)
	NotifyThreshold int  // -notify-threshold: occupancy (packets) that triggers a notification
	Reroute         bool // -reroute: congestion-aware ECMP reselection (implies -notify)
	Throttle        bool // -throttle: notification-driven source gating (implies -notify)
}

// DefaultFlags returns the paper-testbed defaults (16 nodes, 1 GiB Terasort,
// DropTail, shallow buffers, 500 µs target, serial event loop).
func DefaultFlags() *FlagSet {
	return &FlagSet{
		Queue:     "droptail",
		Mode:      "default",
		Transport: "",
		BufferStr: "shallow",
		Target:    500 * time.Microsecond,
		Nodes:     16,
		Racks:     1,
		Spines:    0,
		Input:     "1GiB",
		Block:     "64MiB",
		Reducers:  32,
		SeedVal:   1,
		Shards:    1,

		FluidThreshold: 0.9,

		NotifyThreshold: 64,
	}
}

// FlagBinder is the one-stop run-configuration surface for commands: a
// FlagSet plus the groups the command honors. Bind registers exactly those
// groups' flags; Options resolves exactly those groups' values, so unbound
// groups keep the builder's defaults instead of overriding them with the
// FlagSet's.
type FlagBinder struct {
	*FlagSet
	groups FlagGroup
}

// NewFlagBinder returns a binder over the paper-testbed defaults covering
// the requested groups plus, always, FlagsRun (-shards).
func NewFlagBinder(groups FlagGroup) *FlagBinder {
	return &FlagBinder{FlagSet: DefaultFlags(), groups: groups | FlagsRun}
}

// Groups returns the groups the binder covers (including the implicit
// FlagsRun).
func (b *FlagBinder) Groups() FlagGroup { return b.groups }

// Bind registers the binder's groups on fs with the FlagSet's current
// values as defaults.
func (b *FlagBinder) Bind(fs *flag.FlagSet) { b.FlagSet.bindGroups(fs, b.groups) }

// Options resolves the parsed values of the binder's groups into builder
// options, reporting the first malformed value.
func (b *FlagBinder) Options() ([]Option, error) { return b.FlagSet.optionsFor(b.groups) }

// bindGroups registers the flags of the selected groups. Registration order
// is irrelevant to the flag package (usage output sorts by name).
func (f *FlagSet) bindGroups(fs *flag.FlagSet, g FlagGroup) {
	if g&FlagsQueue != 0 {
		fs.StringVar(&f.Queue, "queue", f.Queue, "queue discipline: droptail | red | simplemark | codel | pie")
		fs.StringVar(&f.Mode, "mode", f.Mode, "AQM protection mode: default | ece-bit | ack+syn")
		fs.StringVar(&f.Transport, "transport", f.Transport, "tcp | tcp-ecn | dctcp (default: tcp for droptail, tcp-ecn otherwise)")
	}
	if g&FlagsBuffer != 0 {
		fs.StringVar(&f.BufferStr, "buffer", f.BufferStr, "switch buffer depth: shallow (1MB/port) | deep (10MB/port)")
	}
	if g&FlagsWorkload != 0 {
		fs.DurationVar(&f.Target, "target", f.Target, "AQM target delay")
		fs.IntVar(&f.Nodes, "nodes", f.Nodes, "cluster size")
		fs.StringVar(&f.Input, "input", f.Input, "Terasort input size (e.g. 1GiB)")
		fs.StringVar(&f.Block, "block", f.Block, "HDFS block size (empty = input/nodes)")
		fs.IntVar(&f.Reducers, "reducers", f.Reducers, "reduce tasks")
	}
	if g&FlagsFabric != 0 {
		fs.IntVar(&f.Racks, "racks", f.Racks, "racks (0/1 = single-switch star)")
		fs.IntVar(&f.Spines, "spines", f.Spines, "spine switches above the racks (0 = no spine tier; needs -racks >= 2)")
	}
	if g&FlagsSeed != 0 {
		fs.Uint64Var(&f.SeedVal, "seed", f.SeedVal, "simulation seed")
	}
	if g&FlagsTenant != 0 {
		fs.IntVar(&f.Jobs, "jobs", f.Jobs, "max batch jobs the open-loop arrival process admits (enables the multi-tenant grid; 0 = scenario default)")
		fs.StringVar(&f.Arrival, "arrival", f.Arrival, `job arrival process, "poisson:400ms" or "fixed:250ms" (takes effect with -jobs/-rpc-clients or a tenant scenario)`)
		fs.IntVar(&f.RPCClients, "rpc-clients", f.RPCClients, "open-loop RPC fleet size (enables the multi-tenant grid; 0 = scenario default)")
	}
	if g&FlagsHybrid != 0 {
		fs.BoolVar(&f.Hybrid, "hybrid", f.Hybrid, "run bulk transfers on the fluid/packet hybrid engine (bit-identical at every shard count)")
		fs.Float64Var(&f.FluidThreshold, "fluid-threshold", f.FluidThreshold, "hybrid fluid utilization threshold in [0, 1]; 0 keeps every transfer at packet level")
	}
	if g&FlagsNotify != 0 {
		fs.BoolVar(&f.Notify, "notify", f.Notify, "switch-originated congestion notifications (reroute + throttle unless one is selected)")
		fs.IntVar(&f.NotifyThreshold, "notify-threshold", f.NotifyThreshold, "queue occupancy (packets) that triggers a notification; takes effect with -notify/-reroute/-throttle")
		fs.BoolVar(&f.Reroute, "reroute", f.Reroute, "congestion-aware ECMP path reselection (implies -notify)")
		fs.BoolVar(&f.Throttle, "throttle", f.Throttle, "notification-driven source injection gating (implies -notify)")
	}
	if g&FlagsRun != 0 {
		fs.IntVar(&f.Shards, "shards", f.Shards, "event-loop shards: 1 = serial, 0 = auto (sized to the machine on leaf-spine fabrics), n > 1 = explicit leaf-spine partitions; results are bit-identical at every value")
	}
}

// optionsFor resolves the selected groups' values into builder options.
func (f *FlagSet) optionsFor(g FlagGroup) ([]Option, error) {
	var opts []Option
	if g&FlagsQueue != 0 {
		queue, err := ParseQueue(f.Queue)
		if err != nil {
			return nil, err
		}
		protect, err := ParseProtect(f.Mode)
		if err != nil {
			return nil, err
		}
		opts = append(opts, Queue(queue))
		if protect != NoProtection {
			opts = append(opts, Protect(protect))
		}
		if f.Transport != "" {
			transport, err := ParseTransport(f.Transport)
			if err != nil {
				return nil, err
			}
			opts = append(opts, Transport(transport))
		}
	}
	if g&FlagsBuffer != 0 {
		buffer, err := ParseBuffer(f.BufferStr)
		if err != nil {
			return nil, err
		}
		opts = append(opts, Buffer(buffer))
	}
	if g&FlagsWorkload != 0 {
		input, err := ParseSize(f.Input)
		if err != nil {
			return nil, err
		}
		var block int64
		if f.Block != "" {
			if block, err = ParseSize(f.Block); err != nil {
				return nil, err
			}
		}
		opts = append(opts, TargetDelay(f.Target), Nodes(f.Nodes),
			InputSize(input), BlockSize(block), Reducers(f.Reducers))
	}
	if g&FlagsFabric != 0 {
		opts = append(opts, Racks(f.Racks), Spines(f.Spines))
	}
	if g&FlagsSeed != 0 {
		opts = append(opts, Seed(f.SeedVal))
	}
	if g&FlagsTenant != 0 {
		tenant, err := f.TenantOptions()
		if err != nil {
			return nil, err
		}
		opts = append(opts, tenant...)
	}
	if g&FlagsHybrid != 0 && f.Hybrid {
		// -fluid-threshold only takes effect with -hybrid, mirroring the
		// builder (FluidThreshold is a resolved default otherwise).
		opts = append(opts, Hybrid(), FluidThreshold(f.FluidThreshold))
	}
	if g&FlagsNotify != 0 && (f.Notify || f.Reroute || f.Throttle) {
		// -notify-threshold only takes effect with an enabler, mirroring the
		// builder (NotifyThreshold is a resolved default otherwise).
		if f.Reroute {
			opts = append(opts, Reroute())
		}
		if f.Throttle {
			opts = append(opts, Throttle())
		}
		if !f.Reroute && !f.Throttle {
			opts = append(opts, Notify())
		}
		opts = append(opts, NotifyThreshold(f.NotifyThreshold))
	}
	if g&FlagsRun != 0 {
		if f.Shards == 0 {
			opts = append(opts, ShardAuto())
		} else {
			// Shards itself rejects negatives with a pointer at ShardAuto.
			opts = append(opts, Shards(f.Shards))
		}
	}
	return opts, nil
}

// Bind registers the queue, buffer, workload, fabric and seed flags on fs
// with the FlagSet's current values as defaults.
//
// Deprecated: build a FlagBinder with
// NewFlagBinder(FlagsQueue | FlagsBuffer | FlagsWorkload | FlagsFabric | FlagsSeed)
// instead — it also binds -shards, which this legacy surface predates.
func (f *FlagSet) Bind(fs *flag.FlagSet) {
	f.bindGroups(fs, FlagsQueue|FlagsBuffer|FlagsWorkload|FlagsFabric|FlagsSeed)
}

// BindBuffer registers only the -buffer flag, for commands that honor the
// buffer depth but fix the queue discipline (like aqmcompare, which
// enumerates the disciplines itself).
//
// Deprecated: use NewFlagBinder(FlagsBuffer | ...) instead.
func (f *FlagSet) BindBuffer(fs *flag.FlagSet) {
	f.bindGroups(fs, FlagsBuffer)
}

// BindWorkload registers only the workload/scale flags — for commands (like
// queueviz) whose queue configuration is fixed by what they visualize, so no
// flag is accepted and then silently ignored.
//
// Deprecated: use NewFlagBinder(FlagsWorkload | FlagsFabric | FlagsSeed)
// instead.
func (f *FlagSet) BindWorkload(fs *flag.FlagSet) {
	f.bindGroups(fs, FlagsWorkload|FlagsFabric|FlagsSeed)
}

// BindFabric registers only the fabric-shape flags (-racks, -spines) — for
// commands whose workload is fixed by a named scale but whose fabric should
// still be selectable from the CLI.
//
// Deprecated: use NewFlagBinder(FlagsFabric | ...) instead.
func (f *FlagSet) BindFabric(fs *flag.FlagSet) {
	f.bindGroups(fs, FlagsFabric)
}

// FabricOptions resolves only the fabric-shape flags into builder options.
//
// Deprecated: use a FlagBinder's Options, which resolves exactly the bound
// groups.
func (f *FlagSet) FabricOptions() []Option {
	return []Option{Racks(f.Racks), Spines(f.Spines)}
}

// BindTenant registers the multi-tenant workload flags (-jobs, -arrival,
// -rpc-clients) — for commands that can drive the workload engine (sweep,
// figures, the tenant examples). Zero values defer to scenario defaults.
// On grid commands (sweep, figures), -jobs or -rpc-clients enables the
// engine; -arrival alone only parameterizes it.
//
// Deprecated: use NewFlagBinder(FlagsTenant | ...) instead.
func (f *FlagSet) BindTenant(fs *flag.FlagSet) {
	f.bindGroups(fs, FlagsTenant)
}

// TenantOptions resolves the tenant flags into builder options, reporting a
// malformed -arrival spec. Unset flags contribute no options, so scenario
// defaults still apply.
func (f *FlagSet) TenantOptions() ([]Option, error) {
	var opts []Option
	if f.Jobs > 0 {
		opts = append(opts, JobArrivals(f.Jobs))
	}
	if f.Arrival != "" {
		kind, mean, err := ParseArrival(f.Arrival)
		if err != nil {
			return nil, err
		}
		if mean > 0 {
			opts = append(opts, Arrivals(kind, mean))
		} else {
			// Bare kind ("-arrival fixed"): switch the distribution only,
			// leaving the builder's default mean in force.
			opts = append(opts, func(c *Cluster) error { c.arrivalKind = kind; return nil })
		}
	}
	if f.RPCClients > 0 {
		opts = append(opts, RPCClients(f.RPCClients))
	}
	return opts, nil
}

// Options resolves the parsed flag values of the legacy Bind surface into
// builder options, reporting the first malformed value.
//
// Deprecated: use a FlagBinder's Options, which also resolves -shards.
func (f *FlagSet) Options() ([]Option, error) {
	return f.optionsFor(FlagsQueue | FlagsBuffer | FlagsWorkload | FlagsFabric | FlagsSeed)
}
