package ecnsim

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/mapred"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/units"
)

// QueueKind selects the switch egress discipline.
type QueueKind uint8

// Queue disciplines under study. RED, SimpleMark and DropTail carry the
// paper's evaluation; CoDel and PIE extend the protection-mode analysis.
const (
	DropTail QueueKind = iota
	RED
	SimpleMark
	CoDel
	PIE
)

// String names the discipline as the CLIs spell it.
func (k QueueKind) String() string {
	switch k {
	case DropTail:
		return "droptail"
	case RED:
		return "red"
	case SimpleMark:
		return "simplemark"
	case CoDel:
		return "codel"
	case PIE:
		return "pie"
	}
	return fmt.Sprintf("queue(%d)", uint8(k))
}

// ParseQueue parses a CLI queue name: droptail | red | simplemark | codel | pie.
func ParseQueue(s string) (QueueKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "droptail":
		return DropTail, nil
	case "red":
		return RED, nil
	case "simplemark":
		return SimpleMark, nil
	case "codel":
		return CoDel, nil
	case "pie":
		return PIE, nil
	}
	return 0, fmt.Errorf("ecnsim: unknown queue %q (want droptail|red|simplemark|codel|pie)", s)
}

// ProtectMode selects which non-ECT packets an AQM shields from early drops
// — the paper's proposed fix.
type ProtectMode uint8

// Protection modes.
const (
	// NoProtection is the default behaviour of current AQM implementations:
	// unmarkable packets (pure ACKs, SYNs) are dropped early.
	NoProtection ProtectMode = iota
	// ECE shields packets whose TCP header carries the ECN-Echo flag.
	ECE
	// ACKSYN shields pure ACKs and SYN/SYN-ACKs — the paper's main proposal.
	ACKSYN
)

// String names the mode as the CLIs spell it.
func (m ProtectMode) String() string {
	switch m {
	case NoProtection:
		return "default"
	case ECE:
		return "ece-bit"
	case ACKSYN:
		return "ack+syn"
	}
	return fmt.Sprintf("protect(%d)", uint8(m))
}

// ParseProtect parses a CLI protection mode: default | ece-bit | ack+syn.
func ParseProtect(s string) (ProtectMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "default", "none", "":
		return NoProtection, nil
	case "ece-bit", "ece":
		return ECE, nil
	case "ack+syn", "acksyn":
		return ACKSYN, nil
	}
	return 0, fmt.Errorf("ecnsim: unknown protection mode %q (want default|ece-bit|ack+syn)", s)
}

func (m ProtectMode) internal() qdisc.ProtectMode {
	switch m {
	case ECE:
		return qdisc.ProtectECE
	case ACKSYN:
		return qdisc.ProtectACKSYN
	}
	return qdisc.ProtectNone
}

// TransportKind selects the TCP variant every node runs.
type TransportKind uint8

// Transports.
const (
	// TCP is NewReno without ECN.
	TCP TransportKind = iota
	// TCPECN is NewReno with classic RFC 3168 ECN.
	TCPECN
	// DCTCP is Data Center TCP (RFC 8257).
	DCTCP
)

// String names the transport as the CLIs spell it.
func (t TransportKind) String() string {
	switch t {
	case TCP:
		return "tcp"
	case TCPECN:
		return "tcp-ecn"
	case DCTCP:
		return "dctcp"
	}
	return fmt.Sprintf("transport(%d)", uint8(t))
}

// ParseTransport parses a CLI transport name: tcp | tcp-ecn | dctcp.
func ParseTransport(s string) (TransportKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tcp", "reno":
		return TCP, nil
	case "tcp-ecn", "ecn":
		return TCPECN, nil
	case "dctcp":
		return DCTCP, nil
	}
	return 0, fmt.Errorf("ecnsim: unknown transport %q (want tcp|tcp-ecn|dctcp)", s)
}

func (k QueueKind) internal() cluster.QueueKind {
	switch k {
	case RED:
		return cluster.QueueRED
	case SimpleMark:
		return cluster.QueueSimpleMark
	case CoDel:
		return cluster.QueueCoDel
	case PIE:
		return cluster.QueuePIE
	}
	return cluster.QueueDropTail
}

func (t TransportKind) internal() tcp.Variant {
	switch t {
	case TCPECN:
		return tcp.RenoECN
	case DCTCP:
		return tcp.DCTCP
	}
	return tcp.Reno
}

// labelPrefix is the series-name prefix the figures key on.
func (t TransportKind) labelPrefix() string {
	switch t {
	case TCPECN:
		return "ecn"
	case DCTCP:
		return "dctcp"
	}
	return "tcp"
}

// BufferDepth selects the per-port switch buffer density the paper contrasts.
type BufferDepth uint8

// Buffer depths.
const (
	// Shallow is a commodity switch: 1 MB per port.
	Shallow BufferDepth = iota
	// Deep is a big-buffer switch: 10 MB per port.
	Deep
)

// String names the depth.
func (b BufferDepth) String() string {
	if b == Deep {
		return "deep"
	}
	return "shallow"
}

// ParseBuffer parses a CLI buffer depth: shallow | deep.
func ParseBuffer(s string) (BufferDepth, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "shallow", "":
		return Shallow, nil
	case "deep":
		return Deep, nil
	}
	return 0, fmt.Errorf("ecnsim: unknown buffer depth %q (want shallow|deep)", s)
}

func (b BufferDepth) internal() cluster.BufferDepth {
	if b == Deep {
		return cluster.Deep
	}
	return cluster.Shallow
}

// ParseSize parses a byte size like "64MiB", "1GiB", "1500B" (also decimal
// "64MB"). All commands parse sizes through this one function.
func ParseSize(s string) (int64, error) {
	v, err := units.ParseByteSize(s)
	return int64(v), err
}

// FormatSize renders a byte count in binary units, as the CLIs print it.
func FormatSize(n int64) string { return units.ByteSize(n).String() }

// Cluster is a validated, immutable experiment configuration: the simulated
// Hadoop cluster (fabric, queues, transport) plus the workload scale every
// scenario interprets. Build one with NewCluster; the zero value is not
// usable.
type Cluster struct {
	nodes, racks int
	spines       int
	oversub      float64
	degrade      []cluster.LinkDegrade
	linkRate     int64 // bits per second
	linkDelay    time.Duration

	queue     QueueKind
	protect   ProtectMode
	transport TransportKind
	// transportSet only gates whether a scenario default may overwrite
	// transport; the resolved transport itself is fingerprinted via
	// Setup.Transport, so the flag stays out of the cache key.
	//ecnlint:allow fingerprintcoverage resolution bookkeeping; the resolved transport is fingerprinted via Setup.Transport
	transportSet bool
	buffer       BufferDepth
	targetDelay  time.Duration

	seed uint64

	inputSize int64
	blockSize int64 // 0 = auto: inputSize/nodes
	reducers  int

	// Ablations.
	ackWireSize   int64
	byteMode      bool
	instantaneous bool
	minRTO        time.Duration
	disableSACK   bool
	disableDelAck bool

	// shards is the event-loop shard request: 0/1 = serial, -1 = auto
	// (cluster.ShardAuto), n > 1 = explicit. Lowered through scale() into
	// the experiment config, so it is part of the canonical form.
	shards int
	// Hybrid engine knobs. hybrid switches bulk transfers to the flow-level
	// fluid/packet hybrid engine; fluidThreshold and promoteHysteresis carry
	// resolved defaults (0.9, 1 ms) but lower only under hybrid, so every
	// Hybrid-off fingerprint is byte-identical to the pure packet engine's.
	hybrid            bool
	fluidThreshold    float64
	promoteHysteresis time.Duration
	// Congestion-notification knobs. notify arms switch-originated
	// notifications; notifyThreshold carries a resolved default (64 packets)
	// and reroute/throttle select the mechanisms (neither chosen = both,
	// resolved in NewCluster). All four lower only under notify, so every
	// Notify-off fingerprint is byte-identical to the pre-notification
	// engine's.
	notify          bool
	notifyThreshold int
	reroute         bool
	throttle        bool
	// facade arms the drop-in net façade (simnet.Net on the lowered
	// cluster). It lowers only when set, so every Facade-off fingerprint is
	// byte-identical to the pre-façade engine's.
	facade bool
	// warnings collects non-fatal configuration demotions (currently only
	// shard fallback); it changes nothing about what runs beyond what the
	// resolved fields already say.
	//ecnlint:allow fingerprintcoverage advisory only; the resolved shard count is fingerprinted via Scale.Shards
	warnings []error

	// Scenario knobs.
	senders     int // incast; 0 = nodes-1
	flowSize    int64
	rpcInterval time.Duration

	// Multi-tenant workload knobs (multijob / tenantmix; 0 values defer to
	// scenario defaults).
	jobArrivals  int // max jobs the arrival process admits
	arrivalKind  ArrivalKind
	arrivalMean  time.Duration
	fairShare    bool
	rpcClients   int
	rpcReqSize   int64
	rpcRespSize  int64
	rpcHeavyTail bool
	warmup       time.Duration
	measure      time.Duration
	window       time.Duration
	// windowSet only records that WithAggregationWindow was called so a zero
	// window can mean "scenario default"; the resolved window is
	// fingerprinted via the workload config.
	//ecnlint:allow fingerprintcoverage resolution bookkeeping; the resolved window is fingerprinted via the workload config
	windowSet bool
}

// Option configures a Cluster under construction. Options report invalid
// values as errors from NewCluster.
type Option func(*Cluster) error

// NewCluster resolves options over the paper's default testbed — 16 nodes on
// one 10 Gbps switch, shallow buffers, DropTail, a 1 GiB Terasort — and
// validates the result.
func NewCluster(opts ...Option) (*Cluster, error) {
	c := &Cluster{
		nodes:             16,
		racks:             1,
		linkRate:          int64(10 * units.Gbps),
		linkDelay:         5 * time.Microsecond,
		queue:             DropTail,
		targetDelay:       500 * time.Microsecond,
		seed:              1,
		inputSize:         int64(1 * units.GiB),
		blockSize:         int64(64 * units.MiB),
		reducers:          32,
		flowSize:          int64(4 * units.MiB),
		rpcInterval:       2 * time.Millisecond,
		arrivalKind:       PoissonArrivals,
		arrivalMean:       150 * time.Millisecond,
		fluidThreshold:    0.9,
		promoteHysteresis: 1 * time.Millisecond,
		notifyThreshold:   64,
		rpcReqSize:        128,
		rpcRespSize:       4096,
		warmup:            250 * time.Millisecond,
		measure:           2 * time.Second,
		window:            500 * time.Millisecond,
	}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("ecnsim: nil option")
		}
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if !c.transportSet {
		// The paper's convention: plain TCP on DropTail, classic ECN on
		// every marking-capable queue.
		if c.queue == DropTail {
			c.transport = TCP
		} else {
			c.transport = TCPECN
		}
	}
	if c.blockSize == 0 {
		c.blockSize = c.inputSize / int64(c.nodes)
		if c.blockSize <= 0 {
			c.blockSize = c.inputSize
		}
	}
	if c.senders == 0 {
		c.senders = c.nodes - 1
	}
	if c.notify && !c.reroute && !c.throttle {
		// Notify() without a mechanism choice engages both, mirroring the
		// cluster spec's resolution; resolving here keeps the fingerprint the
		// resolved form, so Notify() and Reroute()+Throttle() coincide.
		c.reroute, c.throttle = true, true
	}
	if c.shards > 1 && (c.spines == 0 || c.racks < 2) {
		// An explicit shard request on a fabric with no leaf/spine cut:
		// demote to serial (results are bit-identical anyway) and record a
		// typed warning instead of failing a configuration that runs fine.
		c.warnings = append(c.warnings, &ShardFallbackWarning{Requested: c.shards, Racks: c.racks, Spines: c.spines})
		c.shards = 1
	}
	if !c.windowSet && c.window > c.measure {
		// A short Measure with the default 500 ms window would be rejected;
		// when the caller never chose a window, follow the measure phase
		// down instead of demanding an explicit MeasureWindow.
		c.window = c.measure
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cluster) validate() error {
	switch {
	case c.queue != DropTail && c.targetDelay <= 0:
		return fmt.Errorf("ecnsim: %s needs a positive target delay", c.queue)
	case c.protect != NoProtection && (c.queue == DropTail || c.queue == SimpleMark):
		return fmt.Errorf("ecnsim: protection mode %s requires an AQM queue (red|codel|pie), not %s", c.protect, c.queue)
	case c.blockSize > c.inputSize:
		return fmt.Errorf("ecnsim: block size %s exceeds input size %s",
			FormatSize(c.blockSize), FormatSize(c.inputSize))
	case c.senders >= c.nodes:
		return fmt.Errorf("ecnsim: %d incast senders need at least %d nodes", c.senders, c.senders+1)
	case c.window <= 0 || c.window > c.measure:
		return fmt.Errorf("ecnsim: MeasureWindow(%v) must be in (0, Measure(%v)]", c.window, c.measure)
	case c.measure/c.window >= 1000:
		return fmt.Errorf("ecnsim: Measure(%v)/MeasureWindow(%v) yields %d windows (max 1000 — the per-window result keys are padded to three digits)",
			c.measure, c.window, c.measure/c.window)
	case c.warmup < 0:
		return fmt.Errorf("ecnsim: Warmup(%v) must be non-negative", c.warmup)
	}
	// The internal workload config is the final authority on the tenant
	// knobs, exactly as spec() is on the fabric.
	wc := c.workloadConfig()
	if err := wc.Validate(); err != nil {
		return fmt.Errorf("ecnsim: %w", err)
	}
	if err := c.validateDegrade(); err != nil {
		return err
	}
	// Final authority on fabric validity is the internal spec itself.
	spec := c.spec()
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("ecnsim: %w", err)
	}
	return nil
}

// validateDegrade checks each DegradeLink against the configured fabric
// shape, so a typo'd switch name or a partitioning failure surfaces from
// NewCluster instead of panicking mid-run. Name resolution and the
// spine-survivor condition come from internal/topo (topo.NamedLink,
// topo.SpinePathsSurvive), the authority on what Build constructs.
func (c *Cluster) validateDegrade() error {
	if len(c.degrade) == 0 {
		return nil
	}
	if c.racks <= 1 {
		return fmt.Errorf("ecnsim: DegradeLink needs inter-switch links — configure Racks(>=2)")
	}
	failed := make(map[[2]int]bool) // {leaf, spine} links taken out by Factor == 0
	for _, d := range c.degrade {
		i, j, ok := topo.NamedLink(c.racks, c.spines, d.From, d.To)
		if !ok {
			return fmt.Errorf("ecnsim: DegradeLink(%q, %q): no such inter-switch link on a %d-rack/%d-spine fabric", d.From, d.To, c.racks, c.spines)
		}
		if d.Factor != 0 {
			continue
		}
		if c.spines == 0 {
			return fmt.Errorf("ecnsim: DegradeLink(%q, %q, 0): failing a two-tier uplink would partition the fabric — use a spine fabric (Spines) or a non-zero derate factor", d.From, d.To)
		}
		failed[[2]int{i, j}] = true
	}
	// The failures must jointly leave every leaf pair a spine whose links to
	// both leaves survive — the same condition the route rebuild enforces —
	// so a partitioning combination errors here instead of panicking inside
	// the first run.
	if len(failed) > 0 {
		if a, b, ok := topo.SpinePathsSurvive(c.racks, c.spines, failed); !ok {
			return fmt.Errorf("ecnsim: DegradeLink: the failed links leave no spine path between leaf%d and leaf%d", a, b)
		}
	}
	return nil
}

// Nodes configures the cluster size (>= 2).
func Nodes(n int) Option {
	return func(c *Cluster) error {
		if n < 2 {
			return fmt.Errorf("ecnsim: Nodes(%d): need at least 2 nodes", n)
		}
		c.nodes = n
		return nil
	}
}

// Racks arranges nodes under top-of-rack switches joined by a 2:1
// oversubscribed aggregation switch (0 or 1 = single-switch star).
func Racks(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: Racks(%d): must be non-negative", n)
		}
		c.racks = n
		return nil
	}
}

// Spines adds a spine tier above the racks: a three-tier leaf-spine fabric
// where every leaf switch connects to every spine and cross-rack traffic is
// ECMP-hashed across the spines by a per-run seeded 5-tuple flow hash.
// Requires Racks >= 2. 0 keeps the two-tier (or star) fabric.
func Spines(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: Spines(%d): must be non-negative", n)
		}
		c.spines = n
		return nil
	}
}

// ShardFallbackWarning records an explicit Shards(n) request that was
// demoted to serial because the configured fabric has no leaf/spine cut to
// partition (it needs Spines >= 1 and Racks >= 2). The run proceeds
// serially with bit-identical results; the warning is advisory.
type ShardFallbackWarning struct {
	// Requested is the shard count the option asked for.
	Requested int
	// Racks and Spines describe the fabric that could not be partitioned.
	Racks, Spines int
}

// Error describes the demotion.
func (w *ShardFallbackWarning) Error() string {
	return fmt.Sprintf("ecnsim: Shards(%d) demoted to serial: a %d-rack/%d-spine fabric has no leaf/spine cut (need Racks >= 2 and Spines >= 1)",
		w.Requested, w.Racks, w.Spines)
}

// AutoShards is the sentinel Shards() reports while ShardAuto is in effect:
// the actual count is sized to the machine and fabric when a run starts.
const AutoShards = cluster.ShardAuto

// Shards requests an explicit event-loop shard count for intra-run
// parallelism: the fabric is partitioned at the leaf/spine boundary and the
// partitions run concurrently under conservative lookahead, with results
// bit-identical to the serial engine. n must be >= 1; 1 is the serial
// engine. On fabrics without a leaf/spine cut an n > 1 request falls back
// to serial with a ShardFallbackWarning (see Warnings); on leaf-spine
// fabrics n must not exceed the leaf (rack) count, which NewCluster rejects.
// Use ShardAuto to size the shard count to the machine instead.
func Shards(n int) Option {
	return func(c *Cluster) error {
		if n < 1 {
			return fmt.Errorf("ecnsim: Shards(%d): need at least 1 (use ShardAuto for automatic sizing)", n)
		}
		c.shards = n
		return nil
	}
}

// ShardAuto sizes the event-loop shard count automatically:
// min(GOMAXPROCS, racks) on leaf-spine fabrics, serial everywhere else.
// Unlike an explicit Shards(n) it never warns — it adapts to whatever
// fabric the other options configure.
func ShardAuto() Option {
	return func(c *Cluster) error {
		c.shards = cluster.ShardAuto
		return nil
	}
}

// Hybrid enables the flow-level hybrid engine: bulk transfers whose paths
// sit below the fluid utilization threshold run as fluid rates (FCT from
// max-min share-of-bottleneck math, completion as a single event) instead of
// packet exchanges; a port crossing the threshold — or observing an AQM
// marking episode — promotes every flow it carries to packet level, and
// demotes back after a quiet hysteresis window. Results stay bit-identical
// at any shard or worker count. Off (the default), the packet engine runs
// exactly as before — Hybrid() changes nothing unless a scenario's transfers
// go through the fluid admission path (macroscale; plus the shuffle fetches
// of the MapReduce scenarios).
func Hybrid() Option {
	return func(c *Cluster) error { c.hybrid = true; return nil }
}

// FluidThreshold sets the hybrid engine's port utilization threshold u in
// [0, 1]: a transfer is admitted fluidly only while every port on its path
// stays below u after admission. 0 keeps every transfer at packet level —
// the exactness mode, byte-identical to the pure packet engine. Takes effect
// only under Hybrid(); the resolved default is 0.9.
func FluidThreshold(u float64) Option {
	return func(c *Cluster) error {
		if u < 0 || u > 1 {
			return fmt.Errorf("ecnsim: FluidThreshold(%g): must be in [0, 1]", u)
		}
		c.fluidThreshold = u
		return nil
	}
}

// PromoteHysteresis sets the quiet window a promoted (packet-mode) port must
// observe — no AQM marks, utilization back under the threshold — before it
// demotes back to fluid service. Takes effect only under Hybrid(); the
// resolved default is 1 ms.
func PromoteHysteresis(d time.Duration) Option {
	return func(c *Cluster) error {
		if d <= 0 {
			return fmt.Errorf("ecnsim: PromoteHysteresis(%v): must be positive", d)
		}
		c.promoteHysteresis = d
		return nil
	}
}

// Notify enables switch-originated congestion notifications: a switch egress
// whose queue crosses the notification threshold emits one notification per
// episode, propagating at the fabric's wire delay, that steers ECMP
// reselection off the hot path and throttles the offending sources. Notify()
// alone engages both mechanisms; combine with Reroute() or Throttle() to
// select one. Results stay bit-identical at any shard or worker count. Off
// (the default), the engine runs exactly as before.
func Notify() Option {
	return func(c *Cluster) error { c.notify = true; return nil }
}

// NotifyThreshold sets the queue occupancy, in packets, at which a switch
// egress emits a congestion notification. Takes effect only under Notify()
// (or Reroute()/Throttle()); the resolved default is 64.
func NotifyThreshold(n int) Option {
	return func(c *Cluster) error {
		if n < 1 {
			return fmt.Errorf("ecnsim: NotifyThreshold(%d): must be at least 1 packet", n)
		}
		c.notifyThreshold = n
		return nil
	}
}

// Reroute enables congestion-aware ECMP path reselection (implies Notify()):
// flows hashed onto a notified-hot port re-salt onto a cold candidate of the
// same route group, holding the alternate for the affinity window so paths
// don't flap.
func Reroute() Option {
	return func(c *Cluster) error { c.notify, c.reroute = true, true; return nil }
}

// Throttle enables notification-driven source injection gating (implies
// Notify()): hosts whose packets cross a notified-hot queue have their uplink
// paced down by a token-bucket gate that decays back to line rate after a
// quiet period.
func Throttle() Option {
	return func(c *Cluster) error { c.notify, c.throttle = true, true; return nil }
}

// Facade enables the drop-in net façade: the lowered cluster carries a
// simnet.Net whose DialContext and Listen are stdlib-shaped, so unmodified
// net/http code runs as a tenant over the simulated fabric under the
// cooperative virtual-time gate (DESIGN.md §2.9). Same seed, same bytes: a
// façade workload's ResultSet is byte-identical at every shard and worker
// count. Off (the default), the engine runs exactly as before — a Facade-off
// configuration's fingerprint is byte-identical to the pre-façade engine's.
func Facade() Option {
	return func(c *Cluster) error { c.facade = true; return nil }
}

// Oversub sets the rack oversubscription factor shaping the default core
// rate on multi-rack fabrics: a rack's total uplink capacity is its ingress
// divided by this factor (split across the spines on leaf-spine fabrics).
// 0 keeps the historical default of 2.
func Oversub(f float64) Option {
	return func(c *Cluster) error {
		if f < 0 {
			return fmt.Errorf("ecnsim: Oversub(%g): must be non-negative", f)
		}
		c.oversub = f
		return nil
	}
}

// DegradeLink fails or derates one inter-switch link right after the fabric
// is built. factor == 0 fails the link (routes are rebuilt around it; the
// fabric must have an alternate path, so this needs a spine tier), 0 <
// factor < 1 derates the link to that fraction of its built rate (routes
// unchanged — ECMP keeps hashing flows onto the slow path). Switch names
// follow the builders: "leaf0".."leafR-1" / "spine0".."spineS-1" on
// leaf-spine fabrics, "tor0".."torR-1" / "agg0" on two-tier. The option can
// be repeated to degrade several links.
func DegradeLink(from, to string, factor float64) Option {
	return func(c *Cluster) error {
		d := cluster.LinkDegrade{From: from, To: to, Factor: factor}
		if err := d.Validate(); err != nil {
			return fmt.Errorf("ecnsim: DegradeLink(%q, %q, %g): %w", from, to, factor, err)
		}
		c.degrade = append(c.degrade, d)
		return nil
	}
}

// Queue selects the switch egress discipline.
func Queue(k QueueKind) Option {
	return func(c *Cluster) error {
		if k > PIE {
			return fmt.Errorf("ecnsim: Queue(%d): unknown queue kind", k)
		}
		c.queue = k
		return nil
	}
}

// Protect selects the AQM's non-ECT protection mode (RED, CoDel, PIE only).
func Protect(m ProtectMode) Option {
	return func(c *Cluster) error {
		if m > ACKSYN {
			return fmt.Errorf("ecnsim: Protect(%d): unknown protection mode", m)
		}
		c.protect = m
		return nil
	}
}

// Transport selects the TCP variant all nodes run. Unset, it defaults to TCP
// on DropTail and TCPECN on every other queue.
func Transport(t TransportKind) Option {
	return func(c *Cluster) error {
		if t > DCTCP {
			return fmt.Errorf("ecnsim: Transport(%d): unknown transport", t)
		}
		c.transport = t
		c.transportSet = true
		return nil
	}
}

// Buffer selects the switch buffer depth.
func Buffer(b BufferDepth) Option {
	return func(c *Cluster) error {
		if b > Deep {
			return fmt.Errorf("ecnsim: Buffer(%d): unknown buffer depth", b)
		}
		c.buffer = b
		return nil
	}
}

// TargetDelay sets the AQM knob the paper sweeps: RED/CoDel/PIE thresholds
// and the SimpleMark threshold derive from it. Ignored by DropTail.
func TargetDelay(d time.Duration) Option {
	return func(c *Cluster) error {
		if d <= 0 {
			return fmt.Errorf("ecnsim: TargetDelay(%v): must be positive", d)
		}
		c.targetDelay = d
		return nil
	}
}

// LinkRate sets every edge link's bandwidth in bits per second.
func LinkRate(bps int64) Option {
	return func(c *Cluster) error {
		if bps <= 0 {
			return fmt.Errorf("ecnsim: LinkRate(%d): must be positive", bps)
		}
		c.linkRate = bps
		return nil
	}
}

// LinkDelay sets every edge link's propagation delay.
func LinkDelay(d time.Duration) Option {
	return func(c *Cluster) error {
		if d < 0 {
			return fmt.Errorf("ecnsim: LinkDelay(%v): must be non-negative", d)
		}
		c.linkDelay = d
		return nil
	}
}

// Seed sets the base seed driving every random stream. Results are
// deterministic in (options, seed).
func Seed(s uint64) Option {
	return func(c *Cluster) error {
		c.seed = s
		return nil
	}
}

// InputSize sets the Terasort input in bytes.
func InputSize(n int64) Option {
	return func(c *Cluster) error {
		if n <= 0 {
			return fmt.Errorf("ecnsim: InputSize(%d): must be positive", n)
		}
		c.inputSize = n
		return nil
	}
}

// BlockSize sets the HDFS block size in bytes. 0 means auto (input/nodes).
func BlockSize(n int64) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: BlockSize(%d): must be non-negative", n)
		}
		c.blockSize = n
		return nil
	}
}

// Reducers sets the number of reduce tasks.
func Reducers(n int) Option {
	return func(c *Cluster) error {
		if n < 1 {
			return fmt.Errorf("ecnsim: Reducers(%d): need at least 1", n)
		}
		c.reducers = n
		return nil
	}
}

// TestScale shrinks the workload to unit-test size: 8 nodes, 128 MiB input,
// 16 MiB blocks, 8 reducers (seconds of wall time per run).
func TestScale() Option {
	return func(c *Cluster) error {
		c.nodes, c.inputSize, c.blockSize, c.reducers = 8, int64(128*units.MiB), int64(16*units.MiB), 8
		return nil
	}
}

// PaperScale approximates the paper's testbed pressure: 16 nodes, 1 GiB
// through the shuffle, 64 MiB blocks, 32 reducers.
func PaperScale() Option {
	return func(c *Cluster) error {
		c.nodes, c.inputSize, c.blockSize, c.reducers = 16, int64(1*units.GiB), int64(64*units.MiB), 32
		return nil
	}
}

// AckWireSize overrides the pure-ACK wire size in bytes (ablation).
func AckWireSize(n int64) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: AckWireSize(%d): must be non-negative", n)
		}
		c.ackWireSize = n
		return nil
	}
}

// ByteMode switches the AQM to per-byte thresholds (ablation; real switches
// are per-packet, per the paper).
func ByteMode(on bool) Option {
	return func(c *Cluster) error { c.byteMode = on; return nil }
}

// Instantaneous switches RED to instantaneous queue measurement (ablation).
func Instantaneous(on bool) Option {
	return func(c *Cluster) error { c.instantaneous = on; return nil }
}

// MinRTO overrides TCP's minimum retransmission timeout (0 = default 200 ms).
func MinRTO(d time.Duration) Option {
	return func(c *Cluster) error {
		if d < 0 {
			return fmt.Errorf("ecnsim: MinRTO(%v): must be non-negative", d)
		}
		c.minRTO = d
		return nil
	}
}

// DisableSACK turns selective acknowledgements off (ablation).
func DisableSACK(off bool) Option {
	return func(c *Cluster) error { c.disableSACK = off; return nil }
}

// DisableDelAck turns delayed ACKs off (ablation: doubles the ACK rate).
func DisableDelAck(off bool) Option {
	return func(c *Cluster) error { c.disableDelAck = off; return nil }
}

// Senders sets the incast scenario's sender count (0 = nodes-1).
func Senders(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: Senders(%d): must be non-negative", n)
		}
		c.senders = n
		return nil
	}
}

// FlowSize sets the incast scenario's per-sender transfer in bytes.
func FlowSize(n int64) Option {
	return func(c *Cluster) error {
		if n <= 0 {
			return fmt.Errorf("ecnsim: FlowSize(%d): must be positive", n)
		}
		c.flowSize = n
		return nil
	}
}

// RPCInterval sets the RPC issue period: the mixed scenario's closed-loop
// probe period, and each tenantmix fleet client's open-loop clock.
func RPCInterval(d time.Duration) Option {
	return func(c *Cluster) error {
		if d <= 0 {
			return fmt.Errorf("ecnsim: RPCInterval(%v): must be positive", d)
		}
		c.rpcInterval = d
		return nil
	}
}

// ArrivalKind selects the job inter-arrival distribution of the
// multi-tenant workload engine.
type ArrivalKind uint8

// Arrival kinds.
const (
	// PoissonArrivals draws exponential inter-arrival times (the default).
	PoissonArrivals ArrivalKind = iota
	// FixedArrivals submits jobs at exact intervals.
	FixedArrivals
)

// String names the kind as the CLIs spell it.
func (k ArrivalKind) String() string {
	if k == FixedArrivals {
		return "fixed"
	}
	return "poisson"
}

// ParseArrival parses a CLI arrival spec: "poisson:400ms" or "fixed:250ms"
// (the bare kind keeps the default mean).
func ParseArrival(s string) (ArrivalKind, time.Duration, error) {
	kindStr, meanStr, hasMean := strings.Cut(strings.ToLower(strings.TrimSpace(s)), ":")
	var kind ArrivalKind
	switch kindStr {
	case "poisson", "":
		kind = PoissonArrivals
	case "fixed":
		kind = FixedArrivals
	default:
		return 0, 0, fmt.Errorf("ecnsim: unknown arrival kind %q (want poisson|fixed, e.g. \"poisson:400ms\")", kindStr)
	}
	if !hasMean {
		return kind, 0, nil
	}
	mean, err := time.ParseDuration(meanStr)
	if err != nil || mean <= 0 {
		return 0, 0, fmt.Errorf("ecnsim: bad arrival mean %q (want a positive duration like 400ms)", meanStr)
	}
	return kind, mean, nil
}

func (k ArrivalKind) internal() mapred.ArrivalKind {
	if k == FixedArrivals {
		return mapred.ArrivalFixed
	}
	return mapred.ArrivalPoisson
}

// JobArrivals caps how many batch jobs the multi-tenant arrival process
// admits (0 = scenario default; arrivals always stop when the measurement
// phase ends).
func JobArrivals(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: JobArrivals(%d): must be non-negative", n)
		}
		c.jobArrivals = n
		return nil
	}
}

// Arrivals selects the job inter-arrival process: Poisson or fixed, with
// the given mean.
func Arrivals(kind ArrivalKind, mean time.Duration) Option {
	return func(c *Cluster) error {
		if kind > FixedArrivals {
			return fmt.Errorf("ecnsim: Arrivals(%d): unknown arrival kind", kind)
		}
		if mean <= 0 {
			return fmt.Errorf("ecnsim: Arrivals(%v): mean must be positive", mean)
		}
		c.arrivalKind = kind
		c.arrivalMean = mean
		return nil
	}
}

// FairShare switches the multi-job slot scheduler from FIFO to fair-share
// (each free slot goes to the job running the fewest tasks of that type).
func FairShare(on bool) Option {
	return func(c *Cluster) error { c.fairShare = on; return nil }
}

// RPCClients sizes the tenantmix scenario's open-loop service fleet
// (client/server pairs spread across the cluster; 0 = scenario default).
func RPCClients(n int) Option {
	return func(c *Cluster) error {
		if n < 0 {
			return fmt.Errorf("ecnsim: RPCClients(%d): must be non-negative", n)
		}
		if n > 1024 {
			return fmt.Errorf("ecnsim: RPCClients(%d): exceeds the 1024 port budget", n)
		}
		c.rpcClients = n
		return nil
	}
}

// RPCSizes sets the fleet's request and response payloads in bytes.
func RPCSizes(req, resp int64) Option {
	return func(c *Cluster) error {
		if req <= 0 || resp <= 0 {
			return fmt.Errorf("ecnsim: RPCSizes(%d, %d): must be positive", req, resp)
		}
		c.rpcReqSize, c.rpcRespSize = req, resp
		return nil
	}
}

// HeavyTailRPC switches fleet responses to a bounded Pareto distribution
// with mean RPCSizes' response value — result sets, not echo packets.
func HeavyTailRPC(on bool) Option {
	return func(c *Cluster) error { c.rpcHeavyTail = on; return nil }
}

// Warmup sets how long the multi-tenant run warms up before measurement
// (arrivals and clients run, nothing is recorded).
func Warmup(d time.Duration) Option {
	return func(c *Cluster) error {
		if d < 0 {
			return fmt.Errorf("ecnsim: Warmup(%v): must be non-negative", d)
		}
		c.warmup = d
		return nil
	}
}

// Measure sets the steady-state measurement phase length. If no
// MeasureWindow was chosen and the phase is shorter than the default
// window, the window follows the phase down (one window).
func Measure(d time.Duration) Option {
	return func(c *Cluster) error {
		if d <= 0 {
			return fmt.Errorf("ecnsim: Measure(%v): must be positive", d)
		}
		c.measure = d
		return nil
	}
}

// MeasureWindow sets the width of the per-window percentile series the
// measurement phase is split into (must not exceed Measure).
func MeasureWindow(d time.Duration) Option {
	return func(c *Cluster) error {
		if d <= 0 {
			return fmt.Errorf("ecnsim: MeasureWindow(%v): must be positive", d)
		}
		c.window = d
		c.windowSet = true
		return nil
	}
}

// Accessors.

// Nodes returns the configured cluster size.
func (c *Cluster) Nodes() int { return c.nodes }

// Racks returns the configured rack count (<=1 = single-switch star).
func (c *Cluster) Racks() int { return c.racks }

// Spines returns the configured spine count (0 = no spine tier).
func (c *Cluster) Spines() int { return c.spines }

// Seed returns the configured base seed.
func (c *Cluster) Seed() uint64 { return c.seed }

// Shards returns the resolved event-loop shard request: 0/1 = serial,
// AutoShards = sized to the machine at run time, n > 1 = explicit. An
// explicit request demoted by fabric shape has already been rewritten to 1
// here (see Warnings).
func (c *Cluster) Shards() int { return c.shards }

// Warnings returns the non-fatal configuration demotions NewCluster
// recorded (nil when the options resolved cleanly). Currently the only
// source is ShardFallbackWarning.
func (c *Cluster) Warnings() []error { return c.warnings }

// TargetDelay returns the configured AQM target delay.
func (c *Cluster) TargetDelay() time.Duration { return c.targetDelay }

// InputSize returns the configured Terasort input in bytes.
func (c *Cluster) InputSize() int64 { return c.inputSize }

// QueueKind returns the configured queue discipline.
func (c *Cluster) QueueKind() QueueKind { return c.queue }

// Buffer returns the configured switch buffer depth.
func (c *Cluster) Buffer() BufferDepth { return c.buffer }

// Label identifies the queue/transport/protection combination the way the
// paper's figure series are named ("droptail", "ecn-ack+syn",
// "dctcp-simplemark", "codel-default", ...).
func (c *Cluster) Label() string {
	switch c.queue {
	case DropTail:
		return "droptail"
	case SimpleMark:
		return c.transport.labelPrefix() + "-simplemark"
	case RED:
		return c.transport.labelPrefix() + "-" + c.protect.String()
	default:
		// CoDel/PIE series are canonically named for classic ECN
		// ("codel-default", matching the internal AQM setups); any other
		// transport is spelled out so rows stay distinguishable.
		label := c.queue.String()
		if c.transport != TCPECN {
			label += "-" + c.transport.labelPrefix()
		}
		return label + "-" + c.protect.String()
	}
}

// String summarizes the configuration compactly.
func (c *Cluster) String() string {
	return fmt.Sprintf("%s/%s/d=%v n=%d in=%s seed=%d",
		c.Label(), c.buffer, c.targetDelay, c.nodes, FormatSize(c.inputSize), c.seed)
}

// withSeed returns a copy of c with the seed replaced (for replications).
func (c *Cluster) withSeed(s uint64) *Cluster {
	d := *c
	d.seed = s
	return &d
}

// spec lowers the configuration onto the internal cluster spec.
func (c *Cluster) spec() cluster.Spec {
	spec := cluster.DefaultSpec()
	spec.Nodes = c.nodes
	spec.Racks = c.racks
	spec.Spines = c.spines
	spec.Oversub = c.oversub
	spec.Degrade = c.degrade
	spec.LinkRate = units.Bandwidth(c.linkRate)
	spec.LinkDelay = c.linkDelay
	spec.Queue = c.queue.internal()
	spec.Buffer = c.buffer.internal()
	spec.TargetDelay = c.targetDelay
	spec.Protect = c.protect.internal()
	spec.Transport = c.transport.internal()
	spec.Seed = c.seed
	spec.ByteMode = c.byteMode
	spec.Instantaneous = c.instantaneous
	spec.Shards = c.shards
	if c.hybrid {
		spec.Hybrid = true
		spec.FluidThreshold = c.fluidThreshold
		spec.PromoteHysteresis = c.promoteHysteresis
	}
	if c.notify {
		spec.Notify = true
		spec.NotifyThreshold = c.notifyThreshold
		spec.NotifyReroute = c.reroute
		spec.NotifyThrottle = c.throttle
	}
	if c.facade {
		spec.Facade = true
	}
	return spec
}

// scale lowers the workload dimensions onto the internal experiment scale.
func (c *Cluster) scale() experiment.Scale {
	return experiment.Scale{
		Nodes:     c.nodes,
		Racks:     c.racks,
		Spines:    c.spines,
		Oversub:   c.oversub,
		InputSize: units.ByteSize(c.inputSize),
		BlockSize: units.ByteSize(c.blockSize),
		Reducers:  c.reducers,
		Shards:    c.shards,
	}
}

// workloadConfig lowers the tenant knobs onto the internal workload config.
// Zero-valued counts (JobArrivals, RPCClients) stay zero here; the tenant
// scenarios apply their own defaults before running.
func (c *Cluster) workloadConfig() experiment.WorkloadConfig {
	policy := mapred.SchedFIFO
	if c.fairShare {
		policy = mapred.SchedFair
	}
	return experiment.WorkloadConfig{
		Arrival:          c.arrivalKind.internal(),
		MeanInterarrival: c.arrivalMean,
		MaxJobs:          c.jobArrivals,
		Policy:           policy,
		RPCClients:       c.rpcClients,
		RPCReqSize:       int(c.rpcReqSize),
		RPCRespSize:      int(c.rpcRespSize),
		RPCHeavyTail:     c.rpcHeavyTail,
		RPCInterval:      c.rpcInterval,
		Warmup:           c.warmup,
		Measure:          c.measure,
		Window:           c.window,
	}
}

// canonicalConfig is the canonical, serializable identity of a Cluster: the
// same lowered experiment and workload configurations every scenario actually
// simulates from, plus the few scenario knobs that bypass them. Two Clusters
// with equal canonical JSON produce identical results by the determinism
// contract, which is what makes the form safe to hash into result-cache keys.
// The builder's bookkeeping fields (transportSet, windowSet) are deliberately
// absent — they change how defaults resolve, not what runs.
type canonicalConfig struct {
	Experiment experiment.Config         `json:"experiment"`
	Workload   experiment.WorkloadConfig `json:"workload"`
	Senders    int                       `json:"senders"`
	FlowSize   int64                     `json:"flow_size"`
	// Fabric link parameters bypass the experiment lowering — they reach the
	// simulation only through spec() (drop traces, fabric construction) — so
	// they enter the canonical form directly. LinkDelay marshals as integer
	// nanoseconds.
	LinkRate  int64         `json:"link_rate_bps"`
	LinkDelay time.Duration `json:"link_delay_ns"`
}

// canonicalJSON serializes the resolved configuration deterministically
// (fixed field order, no maps). It rides the same lowering functions the
// scenarios run through, so a new option that reaches the simulation cannot
// silently stay out of the canonical form.
func (c *Cluster) canonicalJSON() []byte {
	b, err := json.Marshal(canonicalConfig{
		Experiment: c.experimentConfig(),
		Workload:   c.workloadConfig(),
		Senders:    c.senders,
		FlowSize:   c.flowSize,
		LinkRate:   c.linkRate,
		LinkDelay:  c.linkDelay,
	})
	if err != nil {
		// Every field is plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("ecnsim: canonicalizing cluster: %v", err))
	}
	return b
}

// Fingerprint returns a stable content address for the fully resolved
// configuration: equal fingerprints mean equal simulation inputs under the
// current results version (see the campaign result cache). The seed is part
// of the fingerprint.
func (c *Cluster) Fingerprint() string {
	return experiment.CacheKey(experiment.ResultsVersion, string(c.canonicalJSON()))
}

// experimentConfig lowers the full configuration (including ablations) onto
// the internal experiment config.
func (c *Cluster) experimentConfig() experiment.Config {
	cfg := experiment.Config{
		Setup: experiment.QueueSetup{
			Label:     c.Label(),
			Queue:     c.queue.internal(),
			Protect:   c.protect.internal(),
			Transport: c.transport.internal(),
		},
		Buffer:        c.buffer.internal(),
		TargetDelay:   c.targetDelay,
		Scale:         c.scale(),
		Seed:          c.seed,
		AckWireSize:   units.ByteSize(c.ackWireSize),
		ByteMode:      c.byteMode,
		Instantaneous: c.instantaneous,
		MinRTO:        c.minRTO,
		DisableSACK:   c.disableSACK,
		DisableDelAck: c.disableDelAck,
		Degrade:       c.degrade,
	}
	// The hybrid knobs lower only when the engine is on: a Hybrid-off
	// configuration's canonical form — and therefore its fingerprint — is
	// byte-identical to what it was before the hybrid engine existed.
	if c.hybrid {
		cfg.Hybrid = true
		cfg.FluidThreshold = c.fluidThreshold
		cfg.PromoteHysteresis = c.promoteHysteresis
	}
	// Same discipline for the notification knobs: a Notify-off canonical
	// form is byte-identical to the pre-notification engine's.
	if c.notify {
		cfg.Notify = true
		cfg.NotifyThreshold = c.notifyThreshold
		cfg.NotifyReroute = c.reroute
		cfg.NotifyThrottle = c.throttle
	}
	// And for the façade: Facade-off canonical forms predate the façade
	// byte for byte.
	if c.facade {
		cfg.Facade = true
	}
	return cfg
}
