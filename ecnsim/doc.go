// Package ecnsim is the public API of the ECN/Hadoop simulation suite: the
// one way to define and run the experiments behind "High Throughput and Low
// Latency on Hadoop Clusters using Explicit Congestion Notification: The
// Untold Truth" (IEEE CLUSTER 2017), and any workload built from the same
// parts.
//
// Unlike the internal/ packages it wraps, ecnsim is importable from outside
// this module. It has three layers:
//
//   - A functional-options builder. NewCluster validates a declarative
//     configuration and applies the paper's defaults:
//
//     c, err := ecnsim.NewCluster(
//     ecnsim.Nodes(16),
//     ecnsim.Queue(ecnsim.RED),
//     ecnsim.Protect(ecnsim.ACKSYN),
//     ecnsim.Transport(ecnsim.DCTCP),
//     ecnsim.TargetDelay(100*time.Microsecond),
//     )
//
//   - A Scenario registry. Workloads implement Scenario and register under
//     a name; terasort, incast, mixed, aqmcompare, leafspine, degradedfabric,
//     multijob, tenantmix and macroscale ship registered. Scenarios() lists
//     them, Lookup retrieves one, and every scenario produces uniform Result
//     rows (JSON- and CSV-marshalable) whatever it simulates.
//
//   - A Runner. Runner.Run accepts a context, fans jobs and their seed
//     replications across a bounded worker pool, reports progress through a
//     callback, and returns a ResultSet that is bit-identical for a given
//     (options, seed) whatever the worker count.
//
//   - Campaigns. A Campaign is a declarative measurement table — scenario,
//     option rows, metric columns — executed by CampaignRunner through a
//     content-addressed result cache (RunCache) keyed on each cluster's
//     canonical configuration (Fingerprint). The registered book
//     (RegisterCampaign/Campaigns) is what cmd/report renders into the
//     generated tables of EXPERIMENTS.md and README.md, and its -check mode
//     gates CI on drift.
//
// The figure pipeline of the paper is exposed through Sweep (the Figures 2-4
// grid with rendering and JSON archival), Figure1, TableI/TableII and
// RenderAQMTable. The multi-tenant workload engine (open-loop job arrivals
// on a shared-slot scheduler plus an open-loop RPC fleet, measured in
// windows) is configured through the JobArrivals/Arrivals/FairShare/
// RPCClients/Warmup/Measure/MeasureWindow options and consumed by the
// multijob and tenantmix scenarios. The flow-level hybrid engine — fluid
// rates on uncontended ports, packet fidelity where congestion lives — is
// enabled by Hybrid() and tuned by FluidThreshold/PromoteHysteresis; the
// macroscale scenario is its home regime. The cmd/ binaries and examples/
// programs are thin shells over this package — see DESIGN.md for the system
// inventory, and the Example functions in this package's test files for
// runnable godoc examples.
package ecnsim
