package ecnsim

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/qdisc"
	"repro/internal/tcp"
	"repro/internal/trace"
	"repro/internal/units"
)

// WriteDropTrace reruns the Figure 1 configuration (RED default mode over the
// options' scale, target delay and seed) with a drop-filtered packet tracer
// chained in front of the metrics collector, and writes the last n drop
// events to w as an NS-2-style trace — answering "who died, and where".
func WriteDropTrace(w io.Writer, n int, opts ...Option) error {
	c, err := NewCluster(opts...)
	if err != nil {
		return err
	}
	spec := c.spec()
	// Force the misbehaving configuration whatever the caller's options say,
	// mirroring Figure1. The tracer chains in front of the single metrics
	// collector via SetObserver, which only the serial engine routes every
	// packet through — so the trace runs serial regardless of Shards (the
	// results are bit-identical either way).
	spec.Queue = cluster.QueueRED
	spec.Protect = qdisc.ProtectNone
	spec.Transport = tcp.RenoECN
	spec.Shards = 1
	cl := cluster.New(spec)

	tr := trace.New(n, metrics.New(1<<14, c.seed))
	tr.Filter = trace.DropsOnly()
	cl.Topo.Net.SetObserver(tr)

	jobCfg := mapred.TerasortConfig(units.ByteSize(c.inputSize), c.reducers)
	jobCfg.BlockSize = units.ByteSize(c.blockSize)
	cl.RunJob(jobCfg)
	return tr.Dump(w)
}
