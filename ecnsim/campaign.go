package ecnsim

import (
	"context"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"repro/internal/experiment"
	"repro/internal/pool"
)

// A Campaign is a declarative measurement table: one registered scenario run
// over a list of option cells, rendered as the columns it declares. Campaigns
// are what keeps the documentation true by construction — cmd/report executes
// the registered book, splices the resulting tables into the markdown files
// between report markers, and CI fails when a committed table no longer
// matches a regenerated one.
//
// Campaigns execute at one of two scales: the full scale described by Common
// alone, or quick scale, where the Quick options are appended after each
// row's options (so they win on the workload knobs they set). The committed
// documentation tables are quick scale — small enough that the CI drift gate
// re-simulates the whole book on every push.
type Campaign struct {
	// Name is the registry key and the marker name the tables splice under
	// ("<!-- report:NAME -->"); lowercase letters, digits and dashes.
	Name string
	// Title renders above the table.
	Title string
	// Scenario is the ecnsim scenario registry key every row runs.
	Scenario string
	// Note, if non-empty, renders as a one-line reading aid under the table.
	Note string

	// Common options apply to every row, before the row's own options.
	Common []Option
	// Quick options are appended after the row options at quick scale.
	Quick []Option

	// Rows are the table's cells in render order.
	Rows []CampaignRow
	// Replications averages every cell over this many consecutive seeds
	// (0 or 1 = single run), exactly like Runner.Replications.
	Replications int

	// Columns declare what the table shows, in render order.
	Columns []Column
}

// CampaignRow is one option cell. A scenario that returns several result
// rows per run (aqmcompare, tenantmix, ...) expands the cell into that many
// table rows.
type CampaignRow struct {
	// Label overrides the rendered row label when the scenario returns a
	// single result row; multi-row results keep their own labels.
	Label string
	// Options apply after the campaign's Common options.
	Options []Option
}

// Column maps one result metric onto a rendered table column.
type Column struct {
	// Header is the column heading.
	Header string
	// Key is the Result value key the column reads.
	Key string
	// Format selects the rendering (ignored when Norm is set).
	Format ColumnFormat
	// Norm renders the value as a multiple of the table's first row —
	// the paper's "normalized to the DropTail baseline" idiom. A zero or
	// missing baseline renders as an em dash.
	Norm bool
}

// ColumnFormat selects how a metric value renders in a table cell. Values
// are deterministic, so the formatting only has to be readable and stable —
// three significant digits with an adaptive unit.
type ColumnFormat uint8

// Column formats.
const (
	// FormatSeconds renders a value in seconds as an adaptive duration
	// ("1.42s", "87.3ms", "25µs").
	FormatSeconds ColumnFormat = iota
	// FormatBandwidth renders bits per second adaptively ("1.2Gbps").
	FormatBandwidth
	// FormatCount renders a count; replication-averaged non-integers keep
	// one decimal.
	FormatCount
	// FormatBytes renders a byte count in binary units.
	FormatBytes
	// FormatFloat renders three significant digits.
	FormatFloat
	// FormatBool renders 0 as "no" and anything else as "yes".
	FormatBool
)

// missingCell renders for absent keys and undefined normalizations.
const missingCell = "—"

// Cell renders the column's value for row r. base is the table's first row,
// the normalization baseline.
func (col Column) Cell(r, base Result) string {
	v, ok := r.Values[col.Key]
	if !ok {
		return missingCell
	}
	if col.Norm {
		b, ok := base.Values[col.Key]
		if !ok || b == 0 {
			return missingCell
		}
		return strconv.FormatFloat(v/b, 'f', 2, 64) + "×"
	}
	switch col.Format {
	case FormatBandwidth:
		return formatScaled(v, []unitStep{{1e9, "Gbps"}, {1e6, "Mbps"}, {1e3, "Kbps"}, {1, "bps"}})
	case FormatCount:
		if v == math.Trunc(v) {
			return strconv.FormatFloat(v, 'f', 0, 64)
		}
		return strconv.FormatFloat(v, 'f', 1, 64)
	case FormatBytes:
		return formatScaled(v, []unitStep{{1 << 30, "GiB"}, {1 << 20, "MiB"}, {1 << 10, "KiB"}, {1, "B"}})
	case FormatFloat:
		return strconv.FormatFloat(v, 'g', 3, 64)
	case FormatBool:
		if v == 0 {
			return "no"
		}
		return "yes"
	default: // FormatSeconds
		return formatScaled(v, []unitStep{{1, "s"}, {1e-3, "ms"}, {1e-6, "µs"}, {1e-9, "ns"}})
	}
}

type unitStep struct {
	scale float64
	name  string
}

// formatScaled renders v with three significant digits against the largest
// unit that keeps the mantissa >= 1 (the smallest unit otherwise).
func formatScaled(v float64, steps []unitStep) string {
	if v == 0 {
		return "0" + steps[len(steps)-1].name
	}
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	step := steps[len(steps)-1]
	for _, s := range steps {
		if v >= s.scale {
			step = s
			break
		}
	}
	m := v / step.scale
	// Three significant digits without drifting into scientific notation:
	// pick the decimal count from the magnitude.
	var prec int
	switch {
	case m >= 100:
		prec = 0
	case m >= 10:
		prec = 1
	default:
		prec = 2
	}
	return neg + strconv.FormatFloat(m, 'f', prec, 64) + step.name
}

var campaignNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate reports the first structural problem: a malformed name, an
// unregistered scenario, or a shapeless table. It is called by every
// CampaignRunner.Run, so a broken definition fails loudly before simulating.
func (c Campaign) Validate() error {
	switch {
	case !campaignNameRE.MatchString(c.Name):
		return fmt.Errorf("ecnsim: campaign name %q must match %s", c.Name, campaignNameRE)
	case c.Title == "":
		return fmt.Errorf("ecnsim: campaign %s has no title", c.Name)
	case len(c.Rows) == 0:
		return fmt.Errorf("ecnsim: campaign %s has no rows", c.Name)
	case len(c.Columns) == 0:
		return fmt.Errorf("ecnsim: campaign %s has no columns", c.Name)
	case c.Replications < 0:
		return fmt.Errorf("ecnsim: campaign %s: negative replications", c.Name)
	}
	if _, ok := Lookup(c.Scenario); !ok {
		return fmt.Errorf("ecnsim: campaign %s names unknown scenario %q (registered: %v)", c.Name, c.Scenario, Scenarios())
	}
	for i, col := range c.Columns {
		if col.Header == "" || col.Key == "" {
			return fmt.Errorf("ecnsim: campaign %s column %d needs a header and a key", c.Name, i)
		}
	}
	return nil
}

var (
	campaignMu sync.RWMutex
	campaigns  = make(map[string]Campaign)
)

// RegisterCampaign adds a campaign to the book. Like Register, it panics on
// a malformed or reserved name or a duplicate — campaign names are the flat
// namespace the report markers key on, and "scenarios" is the registry
// table cmd/report renders itself (a campaign under that name would be
// silently shadowed, never rendered). Scenario existence is checked at run
// time (Validate), not here, because package init order registers campaigns
// before some scenarios.
func RegisterCampaign(c Campaign) {
	if !campaignNameRE.MatchString(c.Name) {
		panic(fmt.Sprintf("ecnsim: RegisterCampaign with bad name %q", c.Name))
	}
	if c.Name == "scenarios" {
		panic(`ecnsim: campaign name "scenarios" is reserved for the registry table`)
	}
	campaignMu.Lock()
	defer campaignMu.Unlock()
	if _, dup := campaigns[c.Name]; dup {
		panic(fmt.Sprintf("ecnsim: campaign %q registered twice", c.Name))
	}
	campaigns[c.Name] = c
}

// CampaignFor returns the named campaign, if registered.
func CampaignFor(name string) (Campaign, bool) {
	campaignMu.RLock()
	defer campaignMu.RUnlock()
	c, ok := campaigns[name]
	return c, ok
}

// Campaigns returns the registered book sorted by name.
func Campaigns() []Campaign {
	campaignMu.RLock()
	defer campaignMu.RUnlock()
	out := make([]Campaign, 0, len(campaigns))
	for _, c := range campaigns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RunCache is the campaign engine's content-addressed result cache: one
// entry per single-seed scenario run, keyed by the results version, the
// scenario name and the cluster's canonical configuration (seed included).
// Re-running a campaign with an unchanged definition therefore re-simulates
// nothing, and editing one row invalidates only that row's runs.
type RunCache struct {
	inner *experiment.Cache
}

// OpenCache opens (creating if needed) a run cache rooted at dir.
func OpenCache(dir string) (*RunCache, error) {
	inner, err := experiment.OpenCache(dir)
	if err != nil {
		return nil, err
	}
	return &RunCache{inner: inner}, nil
}

// DefaultCacheDir returns the conventional per-user cache location.
func DefaultCacheDir() string { return experiment.DefaultCacheDir() }

// Stats reports cache hits and misses since opening.
func (c *RunCache) Stats() (hits, misses int) { return c.inner.Stats() }

// runKey addresses one single-seed scenario run.
func runKey(scenario string, cl *Cluster) string {
	return experiment.CacheKey(experiment.ResultsVersion, scenario, string(cl.canonicalJSON()))
}

// CampaignResult is an executed campaign: the flattened table rows in render
// order, with row labels resolved.
type CampaignResult struct {
	Campaign Campaign
	// Quick records the scale the rows were produced at.
	Quick bool
	// Rows is the rendered table's data in order: each campaign row's
	// results (replication-averaged), concatenated.
	Rows []Result
}

// CampaignRunner executes campaigns: rows expand into single-seed runs, the
// cache absorbs runs already on disk, the remainder fans over a bounded
// worker pool, and replications merge in declaration order after the pool
// drains — so results are bit-identical for any worker count and any
// hit/miss split, exactly like Runner.
type CampaignRunner struct {
	// Workers bounds concurrent simulations (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Quick appends each campaign's Quick options after the row options.
	Quick bool
	// Cache, if non-nil, short-circuits runs whose results are stored.
	Cache *RunCache
	// Progress, if non-nil, is called before each simulated run with the
	// number of runs already accounted for (cached runs count as done), the
	// total, and the run's identity. Invoked under the pool's dispatch
	// lock; must not block.
	Progress func(done, total int, label string)
}

// campaignTask is one single-seed run of one campaign row.
type campaignTask struct {
	row     int
	cluster *Cluster
	key     string
	cached  bool
	rows    []Result
	err     error
}

// Run executes the campaign at the runner's scale and returns its table.
func (cr *CampaignRunner) Run(ctx context.Context, camp Campaign) (*CampaignResult, error) {
	if err := camp.Validate(); err != nil {
		return nil, err
	}
	scenario, _ := Lookup(camp.Scenario)
	reps := camp.Replications
	if reps < 1 {
		reps = 1
	}

	tasks := make([]*campaignTask, 0, len(camp.Rows)*reps)
	var misses []*campaignTask
	for ri, row := range camp.Rows {
		opts := make([]Option, 0, len(camp.Common)+len(row.Options)+len(camp.Quick))
		opts = append(opts, camp.Common...)
		opts = append(opts, row.Options...)
		if cr.Quick {
			opts = append(opts, camp.Quick...)
		}
		base, err := NewCluster(opts...)
		if err != nil {
			return nil, fmt.Errorf("ecnsim: campaign %s row %d: %w", camp.Name, ri, err)
		}
		for rep := 0; rep < reps; rep++ {
			t := &campaignTask{row: ri, cluster: base.withSeed(base.seed + uint64(rep))}
			if cr.Cache != nil {
				t.key = runKey(camp.Scenario, t.cluster)
				hit, err := cr.Cache.inner.Get(t.key, &t.rows)
				if err != nil {
					return nil, err
				}
				t.cached = hit
			}
			if !t.cached {
				misses = append(misses, t)
			}
			tasks = append(tasks, t)
		}
	}

	total := len(tasks)
	alreadyDone := total - len(misses)
	p := &pool.Pool{Workers: cr.Workers}
	if cr.Progress != nil {
		p.OnStart = func(i, done int) {
			cr.Progress(alreadyDone+done, total, camp.Name+"/"+camp.Scenario+" "+misses[i].cluster.String())
		}
	}
	if err := p.Run(ctx, len(misses), func(i int) {
		t := misses[i]
		t.rows, t.err = scenario.Run(ctx, t.cluster)
	}); err != nil {
		return nil, err
	}
	for _, t := range misses {
		if t.err != nil {
			return nil, fmt.Errorf("ecnsim: campaign %s: %w", camp.Name, t.err)
		}
		if cr.Cache != nil {
			if err := cr.Cache.inner.Put(t.key, t.rows); err != nil {
				return nil, err
			}
		}
	}

	out := &CampaignResult{Campaign: camp, Quick: cr.Quick}
	for ri, row := range camp.Rows {
		perRep := make([][]Result, 0, reps)
		for _, t := range tasks {
			if t.row == ri {
				perRep = append(perRep, t.rows)
			}
		}
		merged, err := mergeReplications(perRep)
		if err != nil {
			return nil, fmt.Errorf("ecnsim: campaign %s row %d: %w", camp.Name, ri, err)
		}
		if row.Label != "" && len(merged) == 1 {
			merged[0].Label = row.Label
		}
		out.Rows = append(out.Rows, merged...)
	}
	return out, nil
}

// RunCampaign is the one-call form: look up a registered campaign and run it
// on a default runner at the given scale.
func RunCampaign(ctx context.Context, name string, quick bool) (*CampaignResult, error) {
	camp, ok := CampaignFor(name)
	if !ok {
		var names []string
		for _, c := range Campaigns() {
			names = append(names, c.Name)
		}
		return nil, fmt.Errorf("ecnsim: unknown campaign %q (registered: %v)", name, names)
	}
	r := &CampaignRunner{Quick: quick}
	return r.Run(ctx, camp)
}
