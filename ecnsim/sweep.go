package ecnsim

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/mapred"
)

// FigureMetric selects which of the paper's three quantities a figure plots.
type FigureMetric uint8

// Figure metrics.
const (
	RuntimeMetric    FigureMetric = iota // Figure 2
	ThroughputMetric                     // Figure 3
	LatencyMetric                        // Figure 4
)

func (m FigureMetric) internal() figures.Metric {
	switch m {
	case ThroughputMetric:
		return figures.MetricThroughput
	case LatencyMetric:
		return figures.MetricLatency
	}
	return figures.MetricRuntime
}

// Sweep is the full grid behind the paper's Figures 2-4: every queue setup
// at every target delay, on shallow and deep buffers, plus the DropTail
// baselines. Build one with NewSweep, run it with Execute, render it with
// RenderFigure, archive it with WriteJSON.
type Sweep struct {
	inner *experiment.Sweep
}

// NewSweep prepares a sweep at the scale, fabric and seed the options
// describe — Racks/Spines/DegradeLink apply to every grid cell.
// Queue/protection/transport options are ignored — the grid enumerates every
// setup itself. Configuring tenancy — JobArrivals(n > 0) or
// RPCClients(n > 0) — switches every grid cell onto the multi-tenant
// workload engine instead of a single Terasort, and the workload knobs are
// archived with the grid.
func NewSweep(opts ...Option) (*Sweep, error) {
	c, err := NewCluster(opts...)
	if err != nil {
		return nil, err
	}
	inner := experiment.NewSweep(c.scale(), c.seed)
	inner.Degrade = c.degrade
	if c.jobArrivals > 0 || c.rpcClients > 0 {
		wc := c.workloadConfig()
		inner.Workload = &wc
	}
	return &Sweep{inner: inner}, nil
}

// SetTargetDelays overrides the default target-delay axis.
func (s *Sweep) SetTargetDelays(ds []time.Duration) {
	s.inner.TargetDelays = append([]time.Duration(nil), ds...)
}

// TargetDelays returns the sweep's target-delay axis.
func (s *Sweep) TargetDelays() []time.Duration {
	return append([]time.Duration(nil), s.inner.TargetDelays...)
}

// SetRepeats averages each grid point over n consecutive seeds.
func (s *Sweep) SetRepeats(n int) { s.inner.Repeats = n }

// SetWorkers bounds concurrent simulations (0 = GOMAXPROCS, 1 = serial).
func (s *Sweep) SetWorkers(n int) { s.inner.Workers = n }

// OnProgress installs a callback invoked before each run.
func (s *Sweep) OnProgress(fn func(done, total int, label string)) {
	if fn == nil {
		s.inner.Progress = nil
		return
	}
	s.inner.Progress = func(done, total int, cfg experiment.Config) {
		fn(done, total, cfg.String())
	}
}

// TotalRuns returns how many grid points Execute will simulate.
func (s *Sweep) TotalRuns() int { return s.inner.TotalRuns() }

// ScaleOptions reconstructs the builder options describing the sweep's
// scale, fabric shape (including link degradations) and seed, so companion
// runs (Figure1, aqmcompare) can match an archived grid exactly.
func (s *Sweep) ScaleOptions() []Option {
	sc := s.inner.Scale
	opts := []Option{
		Nodes(sc.Nodes),
		Racks(sc.Racks),
		Spines(sc.Spines),
		Oversub(sc.Oversub),
		InputSize(int64(sc.InputSize)),
		BlockSize(int64(sc.BlockSize)),
		Reducers(sc.Reducers),
		Seed(s.inner.Seed),
	}
	for _, d := range s.inner.Degrade {
		opts = append(opts, DegradeLink(d.From, d.To, d.Factor))
	}
	if w := s.inner.Workload; w != nil {
		kind := PoissonArrivals
		if w.Arrival == mapred.ArrivalFixed {
			kind = FixedArrivals
		}
		opts = append(opts,
			Arrivals(kind, time.Duration(w.MeanInterarrival)),
			FairShare(w.Policy == mapred.SchedFair),
			HeavyTailRPC(w.RPCHeavyTail),
			Warmup(time.Duration(w.Warmup)),
			Measure(time.Duration(w.Measure)),
			MeasureWindow(time.Duration(w.Window)),
		)
		// Zero-valued knobs mean "unset" at the builder (scenario defaults
		// apply) and would be rejected or dropped by the options, so only
		// the populated ones are emitted. Workloads authored through
		// ecnsim always populate sizes and interval; a hand-rolled
		// experiment-layer workload with a clientless fleet config still
		// round-trips without tripping RPCSizes' positivity check.
		if w.MaxJobs > 0 {
			opts = append(opts, JobArrivals(w.MaxJobs))
		}
		if w.RPCClients > 0 {
			opts = append(opts, RPCClients(w.RPCClients))
		}
		if w.RPCReqSize > 0 && w.RPCRespSize > 0 {
			opts = append(opts, RPCSizes(int64(w.RPCReqSize), int64(w.RPCRespSize)))
		}
		if w.RPCInterval > 0 {
			opts = append(opts, RPCInterval(time.Duration(w.RPCInterval)))
		}
	}
	return opts
}

// Execute runs the whole grid over the worker pool. Results are
// deterministic in (options, seed, repeats) and independent of the worker
// count. If ctx is cancelled mid-grid, ctx.Err() is returned.
func (s *Sweep) Execute(ctx context.Context) error {
	return s.inner.ExecuteContext(ctx)
}

// Buffers returns the buffer depths the grid covers, in render order.
func (s *Sweep) Buffers() []BufferDepth { return []BufferDepth{Shallow, Deep} }

// Labels returns the series labels present for a buffer depth, in the
// paper's render order.
func (s *Sweep) Labels(buf BufferDepth) []string {
	return figures.SortedLabels(s.inner, buf.internal())
}

// Results flattens the executed grid into uniform rows in deterministic
// order: per buffer depth, the DropTail baseline then every series in figure
// order along the target-delay axis. Labels are "<buffer>/<series>".
func (s *Sweep) Results() *ResultSet {
	out := &ResultSet{}
	add := func(buf BufferDepth, label string, r experiment.Result) {
		out.Results = append(out.Results, Result{
			Scenario: "sweep",
			Label:    buf.String() + "/" + label,
			Seed:     s.inner.Seed,
			Values:   experimentValues(r),
		})
	}
	for _, buf := range s.Buffers() {
		add(buf, "droptail", s.inner.DropTail[buf.internal()])
		for _, label := range s.Labels(buf) {
			for _, r := range s.inner.Series[buf.internal()][label] {
				add(buf, label, r)
			}
		}
	}
	return out
}

// RenderFigure renders one sub-figure (metric x buffer depth) as a plain-text
// table in the paper's normalization, e.g. RenderFigure(RuntimeMetric,
// Shallow, "2a").
func (s *Sweep) RenderFigure(m FigureMetric, buf BufferDepth, figNo string) string {
	return figures.RenderFigure(s.inner, m.internal(), buf.internal(), figNo)
}

// Headline carries the paper's Section IV/VI headline numbers.
type Headline struct {
	// ThroughputGain is SimpleMark/shallow vs DropTail/shallow (>1 = boost).
	ThroughputGain float64
	// LatencyReduction is 1 - normalized latency vs DropTail/deep (~0.85).
	LatencyReduction float64
	// ShallowReachesDeep is DropTail/deep runtime over SimpleMark/shallow
	// runtime (1.0 = the commodity switch matches the deep-buffer switch).
	ShallowReachesDeep float64
}

// Headline extracts the headline comparisons at the given target-delay index.
func (s *Sweep) Headline(delayIdx int) Headline {
	h := figures.Headline(s.inner, delayIdx)
	return Headline{
		ThroughputGain:     h.ThroughputGain,
		LatencyReduction:   h.LatencyReduction,
		ShallowReachesDeep: h.ShallowReachesDeep,
	}
}

// WriteJSON archives the executed sweep (the cmd/sweep -json format).
func (s *Sweep) WriteJSON(w io.Writer) error { return s.inner.WriteJSON(w) }

// ReadSweepJSON loads a sweep archived with WriteJSON, for re-rendering
// figures without re-simulating.
func ReadSweepJSON(r io.Reader) (*Sweep, error) {
	inner, err := experiment.ReadJSON(r)
	if err != nil {
		return nil, err
	}
	return &Sweep{inner: inner}, nil
}

// TableI renders the paper's Table I (ECN codepoints on the TCP header).
func TableI() string { return figures.TableI() }

// TableII renders the paper's Table II (ECN codepoints on the IP header).
func TableII() string { return figures.TableII() }

// QueueSnapshot is the Figure 1 reproduction: the composition of a switch
// egress queue during the shuffle under RED's default (unprotected) mode.
type QueueSnapshot struct {
	inner figures.QueueSnapshot
}

// Figure1 samples one victim egress queue every interval during a Terasort
// over RED in default mode at the options' scale, target delay and seed (the
// queue and protection options are ignored — the misbehaving configuration
// is the point of the figure).
func Figure1(interval time.Duration, opts ...Option) (QueueSnapshot, error) {
	c, err := NewCluster(opts...)
	if err != nil {
		return QueueSnapshot{}, err
	}
	if interval <= 0 {
		return QueueSnapshot{}, fmt.Errorf("ecnsim: Figure1 interval %v must be positive", interval)
	}
	return QueueSnapshot{inner: figures.Figure1(c.scale(), c.targetDelay, interval, c.seed)}, nil
}

// Render formats the snapshot like the paper's Figure 1 caption.
func (q QueueSnapshot) Render() string { return q.inner.Render() }

// Values returns the snapshot's quantities as a uniform metric map.
func (q QueueSnapshot) Values() map[string]float64 {
	return map[string]float64{
		"samples":       float64(q.inner.Samples),
		"mean_depth":    q.inner.MeanDepth,
		"max_depth":     q.inner.MaxDepth,
		"ect_share":     q.inner.MeanECTShare,
		"ack_share":     q.inner.MeanACKShare,
		"data_drops":    float64(q.inner.DataDrops),
		"ack_drops":     float64(q.inner.AckDrops),
		"syn_drops":     float64(q.inner.SynDrops),
		KeyAckDropShare: q.inner.AckDropShare,
	}
}
