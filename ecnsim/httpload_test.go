package ecnsim

import (
	"context"
	"testing"
	"time"
)

// httpLoadMatrixOpts shrinks the httpload workload to determinism-matrix
// size: the shard-matrix fabric with a short measured phase, so the 1/2/4/8
// shard × 1/4 worker sweep stays unit-test sized. The responses are big
// enough to push the rack uplinks into marking — the fabric counters must
// be live, or the byte-compare cannot see a shard-aggregation bug in them
// (TestHTTPLoadSmoke pins that they stay live).
func httpLoadMatrixOpts(extra ...Option) []Option {
	return append(shardMatrixOpts(
		RPCClients(4),
		RPCSizes(2048, 128<<10),
		RPCInterval(500*time.Microsecond),
		// Datacenter-tuned MinRTO: the ecn-default row drops ACKs, and the
		// resulting recovery tail is otherwise ~1 s of near-idle drain that
		// sharded runs cross one lookahead window at a time.
		MinRTO(10*time.Millisecond),
		Warmup(5*time.Millisecond),
		Measure(10*time.Millisecond),
		MeasureWindow(5*time.Millisecond),
	), extra...)
}

// TestHTTPLoadMatrixByteIdentical is the determinism matrix over the façade:
// real net/http servers and clients — goroutines the Go scheduler interleaves
// freely — driven through the virtual-time gate, must serialize to
// ResultSets byte-identical to the serial single-worker run at every shard
// and worker count. This is the tentpole contract of DESIGN.md §2.9.
func TestHTTPLoadMatrixByteIdentical(t *testing.T) {
	runShardMatrix(t, func(t *testing.T, shards int) []Job {
		return []Job{
			{Scenario: mustLookup(t, "httpload"), Cluster: mustCluster(t, httpLoadMatrixOpts(Shards(shards))...)},
		}
	})
}

// TestHTTPLoadSmoke pins the scenario's shape: three setup rows, populated
// exchange counts, zero failures.
func TestHTTPLoadSmoke(t *testing.T) {
	s := mustLookup(t, "httpload")
	rows, err := s.Run(context.Background(), mustCluster(t, httpLoadMatrixOpts()...))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("httpload produced %d rows, want 3", len(rows))
	}
	labels := []string{"droptail", "ecn-default", "ecn-ack+syn"}
	for i, r := range rows {
		if r.Label != labels[i] {
			t.Errorf("row %d label = %q, want %q", i, r.Label, labels[i])
		}
		if r.Value(KeyRPCCount) == 0 {
			t.Errorf("row %q measured no exchanges", r.Label)
		}
		if r.Value(KeyRPCFailed) != 0 {
			t.Errorf("row %q reports %v failed exchanges", r.Label, r.Value(KeyRPCFailed))
		}
		if r.Value(KeyRPCP99) < r.Value(KeyRPCP50) || r.Value(KeyRPCP50) <= 0 {
			t.Errorf("row %q latency implausible: p50=%v p99=%v", r.Label, r.Value(KeyRPCP50), r.Value(KeyRPCP99))
		}
		// The ECN rows must mark: the matrix cell is only a determinism
		// probe for the fabric counters while the fabric actually marks,
		// and zero marks under RED here means the cell went uncontended.
		if i > 0 && r.Value(KeyMarks) == 0 {
			t.Errorf("row %q recorded no marks — matrix cell no longer exercises fabric counters", r.Label)
		}
	}
}

// TestFacadeOffFingerprintPinned pins the compatibility half of the façade
// contract: a configuration that never calls Facade() has the exact
// fingerprint it had before the façade existed, so every cached result and
// every recorded baseline stays valid. The constants are the pre-façade
// hashes, captured verbatim.
func TestFacadeOffFingerprintPinned(t *testing.T) {
	const wantMatrix = "7f59087e07cdbd87d203b06448eb58b371143b5a5582a45a1ad8719509240618"
	if got := mustCluster(t, shardMatrixOpts()...).Fingerprint(); got != wantMatrix {
		t.Errorf("shard-matrix config fingerprint moved:\n got  %s\n want %s", got, wantMatrix)
	}
	const wantStar = "8c4b6396a827e080c46314bf72de1dedeaad58cd59bcf6d1dba871461120c968"
	if got := mustCluster(t, Nodes(4), Queue(DropTail), Seed(7)).Fingerprint(); got != wantStar {
		t.Errorf("star config fingerprint moved:\n got  %s\n want %s", got, wantStar)
	}
}

// TestFacadeMovesFingerprint: the façade is part of the canonical form —
// results simulated with it must not satisfy a cache key minted without it.
func TestFacadeMovesFingerprint(t *testing.T) {
	off := mustCluster(t, shardMatrixOpts()...)
	on := mustCluster(t, shardMatrixOpts(Facade())...)
	if off.Fingerprint() == on.Fingerprint() {
		t.Error("Facade() did not move the fingerprint")
	}
}
