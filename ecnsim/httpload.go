package ecnsim

import (
	"context"
	"time"

	"repro/internal/experiment"
)

func init() {
	Register(NewScenario("httpload",
		"real net/http echo/fan-out service over the simnet façade: DropTail vs ECN default vs ack+syn",
		runHTTPLoad))

	RegisterCampaign(Campaign{
		Name:     "httpload",
		Scenario: "httpload",
		Title:    "HTTP load — unmodified net/http tenants over the façade",
		Note: "A stock http.Server and http.Client pool exchange echo and nested fan-out " +
			"requests entirely over the simulated fabric (DESIGN.md §2.9). The latency an " +
			"actual service stack observes tells the same story the modeled fleet does: " +
			"default-mode ECN protects the exchanges, ack+syn protects them without " +
			"collateral ACK loss. Byte-identical at any shard or worker count.",
		// 256 KiB responses every millisecond push the oversubscribed rack
		// uplinks into sustained queueing — the load that separates the three
		// setups (DropTail rides the standing queue, RED marks it away).
		Common: []Option{
			Nodes(16), Racks(8), Spines(2), RPCClients(8),
			RPCSizes(2048, 256<<10), RPCInterval(time.Millisecond),
			TargetDelay(100 * time.Microsecond),
			Warmup(50 * time.Millisecond), Measure(300 * time.Millisecond),
			MeasureWindow(75 * time.Millisecond),
		},
		// Quick mode is the CI cell: the same contention story at a size the
		// examples smoke can re-run under -race.
		Quick: []Option{
			Nodes(8), Racks(4), Spines(2), RPCClients(4),
			Warmup(10 * time.Millisecond), Measure(40 * time.Millisecond),
			MeasureWindow(20 * time.Millisecond),
		},
		Rows: []CampaignRow{
			{}, // the scenario runs droptail / ecn-default / ecn-ack+syn itself
		},
		Columns: []Column{
			{Header: "RPCs", Key: KeyRPCCount, Format: FormatCount},
			{Header: "RPC p50", Key: KeyRPCP50, Format: FormatSeconds},
			{Header: "RPC p99", Key: KeyRPCP99, Format: FormatSeconds},
			{Header: "failed", Key: KeyRPCFailed, Format: FormatCount},
			{Header: "ACK drop share", Key: KeyAckDropShare, Format: FormatFloat},
			{Header: "events", Key: KeySimEvents, Format: FormatCount},
		},
	})
}

// runHTTPLoad is the façade's headline scenario: the tenantmix service tier
// realized as real net/http code — a stock http.Server per pair answering
// echo and nested fan-out requests, a stock http.Client per pair issuing
// them — measured through the same phase layout and reported under the same
// three queue setups as tenantmix (DropTail baseline, the AQM's default
// mode, ACK+SYN protection; DCTCP-RED under Transport(DCTCP)). The façade is
// enabled implicitly, like macroscale reshapes its cell: the scenario is
// what the option exists for. Defaults: a 4-client fleet if the cluster
// configured none.
func runHTTPLoad(ctx context.Context, c *Cluster) ([]Result, error) {
	d := *c
	if d.rpcClients == 0 {
		d.rpcClients = 4
	}
	d.facade = true
	setups := []experiment.QueueSetup{
		experiment.SetupDropTail, experiment.SetupECNDefault, experiment.SetupECNAckSyn,
	}
	if d.transport == DCTCP {
		setups = []experiment.QueueSetup{
			experiment.SetupDropTail, experiment.SetupDCTCPDefault, experiment.SetupDCTCPAckSyn,
		}
	}
	w := d.workloadConfig()
	rows := make([]Result, 0, len(setups))
	for _, setup := range setups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := d.experimentConfig()
		cfg.Setup = setup
		r := experiment.RunHTTPLoad(cfg, w)
		rows = append(rows, Result{
			Scenario: "httpload",
			Label:    setup.Label,
			Seed:     d.seed,
			Values:   tenantValues(r),
		})
	}
	return rows, nil
}
