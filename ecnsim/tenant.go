package ecnsim

import (
	"context"
	"fmt"

	"repro/internal/experiment"
)

// Extra value keys produced by the multi-tenant scenarios.
const (
	// Batch tier: the job stream's fate.
	KeyJobsSubmitted = "jobs_submitted"
	KeyJobsCompleted = "jobs_completed"
	KeyJobMean       = "job_mean_s"
	KeyJobP50        = "job_p50_s"
	KeyJobP99        = "job_p99_s"
	KeyMakespan      = "makespan_s"
	// KeyDrained is 1 when every submitted job completed before the drain
	// deadline, 0 when the open-loop backlog outlived it.
	KeyDrained = "drained"

	// Service tier shape.
	KeyRPCClients = "rpc_clients"
)

// Per-window series keys. Window indices are zero-padded to three digits
// so the CSV column order matches the time order (NewCluster caps a run at
// 1000 windows, so the padding always suffices).

// KeyRPCWindowP50 returns the RPC P50 key for measurement window i.
func KeyRPCWindowP50(i int) string { return fmt.Sprintf("rpc_p50_w%03d_s", i) }

// KeyRPCWindowP99 returns the RPC P99 key for measurement window i.
func KeyRPCWindowP99(i int) string { return fmt.Sprintf("rpc_p99_w%03d_s", i) }

// KeyRPCWindowCount returns the RPC sample-count key for window i.
func KeyRPCWindowCount(i int) string { return fmt.Sprintf("rpc_n_w%03d", i) }

// KeyNetWindowP99 returns the per-packet network latency P99 key for
// measurement window i.
func KeyNetWindowP99(i int) string { return fmt.Sprintf("net_p99_w%03d_s", i) }

func init() {
	Register(NewScenario("multijob",
		"open-loop job arrivals overlapping on shared slots: FIFO vs fair-share scheduling",
		runMultiJob))
	Register(NewScenario("tenantmix",
		"RPC client fleet under sustained batch load: per-window P99 across protection modes",
		runTenantMix))
}

// tenantValues flattens a tenant result onto canonical keys: the figure
// metrics, the job statistics, the service aggregate, and the per-window
// series.
func tenantValues(r experiment.TenantResult) map[string]float64 {
	values := experimentValues(r.Result)
	values[KeyJobsSubmitted] = float64(r.JobsSubmitted)
	values[KeyJobsCompleted] = float64(r.JobsCompleted)
	values[KeyJobMean] = r.JobMean.Seconds()
	values[KeyJobP50] = r.JobP50.Seconds()
	values[KeyJobP99] = r.JobP99.Seconds()
	values[KeyMakespan] = r.Makespan.Seconds()
	values[KeyDrained] = 0
	if r.Drained {
		values[KeyDrained] = 1
	}
	values[KeyRPCClients] = float64(r.Workload.RPCClients)
	values[KeyRPCCount] = float64(r.RPCCount)
	values[KeyRPCFailed] = float64(r.RPCFailed)
	values[KeyRPCMean] = r.RPCMean.Seconds()
	values[KeyRPCP50] = r.RPCP50.Seconds()
	values[KeyRPCP99] = r.RPCP99.Seconds()
	for i, w := range r.RPCWindows {
		values[KeyRPCWindowCount(i)] = float64(w.Count)
		values[KeyRPCWindowP50(i)] = w.P50.Seconds()
		values[KeyRPCWindowP99(i)] = w.P99.Seconds()
	}
	for i, w := range r.NetWindows {
		values[KeyNetWindowP99(i)] = w.P99.Seconds()
	}
	return values
}

// runMultiJob answers the consolidation question the single-job harness
// cannot: what happens when jobs keep arriving before their predecessors
// finish? It runs the same seeded arrival stream twice over the cluster's
// queue configuration — once under FIFO slot scheduling, once under
// fair-share — and reports job completion statistics side by side. The
// cluster's RPC fleet knobs apply if set (default: batch only); JobArrivals
// caps submissions (default 0 = arrivals continue for the whole
// measurement phase).
func runMultiJob(ctx context.Context, c *Cluster) ([]Result, error) {
	d := *c
	rows := make([]Result, 0, 2)
	for _, fair := range []bool{false, true} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run := d
		run.fairShare = fair
		w := run.workloadConfig()
		r := experiment.RunTenants(run.experimentConfig(), w)
		rows = append(rows, Result{
			Scenario: "multijob",
			Label:    d.Label() + "/" + w.Policy.String(),
			Seed:     d.seed,
			Values:   tenantValues(r),
		})
	}
	return rows, nil
}

// runTenantMix is the paper's motivating scenario measured the way an SLO
// is: an open-loop RPC fleet shares the fabric with a sustained stream of
// batch jobs, and the service's per-window P99 series is reported under
// three queue setups — the DropTail baseline, the AQM's default
// (unprotected) mode, and ACK+SYN protection. The AQM family follows the
// cluster's transport (DCTCP-RED under Transport(DCTCP)). Defaults: a
// 4-client fleet if the cluster configured none; arrivals continue for the
// whole measurement phase unless JobArrivals caps them.
func runTenantMix(ctx context.Context, c *Cluster) ([]Result, error) {
	d := *c
	if d.rpcClients == 0 {
		d.rpcClients = 4
	}
	setups := []experiment.QueueSetup{
		experiment.SetupDropTail, experiment.SetupECNDefault, experiment.SetupECNAckSyn,
	}
	if d.transport == DCTCP {
		setups = []experiment.QueueSetup{
			experiment.SetupDropTail, experiment.SetupDCTCPDefault, experiment.SetupDCTCPAckSyn,
		}
	}
	w := d.workloadConfig()
	rows := make([]Result, 0, len(setups))
	for _, setup := range setups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := d.experimentConfig()
		cfg.Setup = setup
		r := experiment.RunTenants(cfg, w)
		rows = append(rows, Result{
			Scenario: "tenantmix",
			Label:    setup.Label,
			Seed:     d.seed,
			Values:   tenantValues(r),
		})
	}
	return rows, nil
}
