package ecnsim

import (
	"context"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/metrics"
)

// Extra value keys produced by the multipath fabric scenarios.
const (
	// Fabric shape actually used by the run (leafspine applies defaults
	// when the cluster was configured as a star).
	KeyRacks  = "racks"
	KeySpines = "spines"

	// Time-weighted queued packets per fabric tier: the sum of the tier's
	// per-port mean queue lengths, each sampled at that port's enqueue
	// instants — a congested port stays visible next to idle siblings.
	KeyHostUpOcc   = "hostup_occ_pkts"
	KeyEdgeOcc     = "edge_occ_pkts"
	KeyCoreUpOcc   = "coreup_occ_pkts"
	KeyCoreDownOcc = "coredown_occ_pkts"

	// Congestion-notification lifecycle counters (hotspot; zero unless the
	// cluster enables Notify/Reroute/Throttle).
	KeyNotifications      = "notifications"
	KeyHotEpisodes        = "hot_episodes"
	KeyRerouted           = "rerouted_pkts"
	KeyThrottles          = "throttles"
	KeyThrottleRecoveries = "throttle_recoveries"
)

func init() {
	Register(NewScenario("leafspine",
		"cross-rack Terasort shuffle over an ECMP leaf-spine fabric, with per-tier queue occupancy",
		runLeafSpine))
	Register(NewScenario("degradedfabric",
		"leaf-spine Terasort with one derated spine uplink: protection modes under asymmetric link health",
		runDegradedFabric))
	Register(NewScenario("hotspot",
		"degraded leaf-spine Terasort under switch-originated congestion notifications: path reselection and source throttling vs plain ECN",
		runHotspot))
}

// leafSpineDefaults returns a copy of c shaped as a leaf-spine fabric: the
// cluster's own Racks/Spines if set, otherwise 4 racks (2 if the node count
// doesn't divide by 4) and 2 spines.
func leafSpineDefaults(c *Cluster) (*Cluster, error) {
	d := *c
	if d.racks <= 1 {
		switch {
		case d.nodes >= 8 && d.nodes%4 == 0:
			d.racks = 4
		case d.nodes >= 4 && d.nodes%2 == 0:
			d.racks = 2
		default:
			return nil, fmt.Errorf("ecnsim: leafspine: %d nodes do not divide into default racks; configure Racks explicitly", d.nodes)
		}
	}
	if d.spines == 0 {
		d.spines = 2
	}
	// The reshape can invalidate degradations that were validated against
	// the cluster's original fabric (e.g. two-tier "tor0"/"agg0" names):
	// re-check them against the leaf-spine shape actually built, so a
	// mismatch errors here instead of panicking inside the run.
	if err := d.validateDegrade(); err != nil {
		return nil, fmt.Errorf("ecnsim: leafspine: configured degradations do not fit the %d-rack/%d-spine fabric: %w", d.racks, d.spines, err)
	}
	return &d, nil
}

// tierValues copies the fabric shape and per-tier occupancy means onto a
// scenario's value map.
func tierValues(values map[string]float64, r experiment.Result, racks, spines int) {
	values[KeyRacks] = float64(racks)
	values[KeySpines] = float64(spines)
	values[KeyHostUpOcc] = r.TierOccupancy[metrics.TierHostUp]
	values[KeyEdgeOcc] = r.TierOccupancy[metrics.TierEdge]
	values[KeyCoreUpOcc] = r.TierOccupancy[metrics.TierCoreUp]
	values[KeyCoreDownOcc] = r.TierOccupancy[metrics.TierCoreDown]
}

// runLeafSpine executes the cluster's Terasort over a three-tier leaf-spine
// fabric (the cluster's own queue/transport/protection configuration),
// reporting the figure metrics plus where the queueing actually sits —
// per-tier mean occupancy across edge and spine layers.
func runLeafSpine(ctx context.Context, c *Cluster) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, err := leafSpineDefaults(c)
	if err != nil {
		return nil, err
	}
	cfg := d.experimentConfig()
	cfg.WatchTiers = true
	r := experiment.Run(cfg)
	values := experimentValues(r)
	tierValues(values, r, d.racks, d.spines)
	return []Result{{Scenario: "leafspine", Label: d.Label(), Seed: d.seed, Values: values}}, nil
}

// runDegradedFabric answers the asymmetric-fabric question: does ACK/SYN
// protection still hold when ECMP keeps hashing flows onto a sick spine
// uplink? It runs the leafspine workload with one derated leaf->spine link
// (leaf0<->spine0 at 25% of its built rate unless the cluster configured
// its own degradations via DegradeLink) under three queue setups — the
// DropTail baseline, the AQM's default mode, and ACK+SYN protection —
// one row each. The AQM family follows the cluster's transport (ECN-RED,
// or DCTCP-RED under Transport(DCTCP)).
func runDegradedFabric(ctx context.Context, c *Cluster) ([]Result, error) {
	d, err := leafSpineDefaults(c)
	if err != nil {
		return nil, err
	}
	if len(d.degrade) == 0 {
		dg := *d
		if err := DegradeLink("leaf0", "spine0", 0.25)(&dg); err != nil {
			return nil, err
		}
		d = &dg
	}
	setups := []experiment.QueueSetup{
		experiment.SetupDropTail, experiment.SetupECNDefault, experiment.SetupECNAckSyn,
	}
	if d.transport == DCTCP {
		setups = []experiment.QueueSetup{
			experiment.SetupDropTail, experiment.SetupDCTCPDefault, experiment.SetupDCTCPAckSyn,
		}
	}
	rows := make([]Result, 0, len(setups))
	for _, setup := range setups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg := d.experimentConfig()
		cfg.Setup = setup
		cfg.WatchTiers = true
		r := experiment.Run(cfg)
		values := experimentValues(r)
		tierValues(values, r, d.racks, d.spines)
		rows = append(rows, Result{
			Scenario: "degradedfabric",
			Label:    setup.Label,
			Seed:     d.seed,
			Values:   values,
		})
	}
	return rows, nil
}

// notifyLabel names the notification mechanisms the cluster runs with.
func notifyLabel(c *Cluster) string {
	switch {
	case !c.notify:
		return "plain"
	case c.reroute && c.throttle:
		return "reroute+throttle"
	case c.reroute:
		return "reroute"
	default:
		return "throttle"
	}
}

// runHotspot asks the congestion-notification question: on the same sick
// fabric as degradedfabric (one leaf->spine uplink derated to 25% unless the
// cluster configured its own degradations), does reacting at the *switch* —
// notification-driven path reselection and source throttling — beat leaving
// the hot spot to end-to-end ECN? It runs the cluster's own queue and
// notification configuration as one row; sweep the mechanisms via the hotspot
// campaign (plain vs Reroute() vs Throttle() vs both).
func runHotspot(ctx context.Context, c *Cluster) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, err := leafSpineDefaults(c)
	if err != nil {
		return nil, err
	}
	if len(d.degrade) == 0 {
		dg := *d
		if err := DegradeLink("leaf0", "spine0", 0.25)(&dg); err != nil {
			return nil, err
		}
		d = &dg
	}
	cfg := d.experimentConfig()
	cfg.WatchTiers = true
	r := experiment.Run(cfg)
	values := experimentValues(r)
	tierValues(values, r, d.racks, d.spines)
	values[KeyNotifications] = float64(r.Notifications)
	values[KeyHotEpisodes] = float64(r.HotEpisodes)
	values[KeyRerouted] = float64(r.Rerouted)
	values[KeyThrottles] = float64(r.Throttles)
	values[KeyThrottleRecoveries] = float64(r.ThrottleRecoveries)
	label := d.Label() + "/" + notifyLabel(d)
	return []Result{{Scenario: "hotspot", Label: label, Seed: d.seed, Values: values}}, nil
}
