package ecnsim

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// tinyOpts keeps one simulation around a tenth of a second.
func tinyOpts(extra ...Option) []Option {
	return append([]Option{
		Nodes(4),
		InputSize(32 << 20),
		BlockSize(8 << 20),
		Reducers(4),
		Queue(RED),
		Protect(ACKSYN),
		TargetDelay(100 * time.Microsecond),
		Seed(1),
	}, extra...)
}

func tinyCluster(t *testing.T, extra ...Option) *Cluster {
	t.Helper()
	c, err := NewCluster(tinyOpts(extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustLookup(t *testing.T, name string) Scenario {
	t.Helper()
	s, err := MustScenario(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunnerDeterminismGolden is the determinism golden test: the same
// (options, seed) through two separate Runner invocations — one serial, one
// parallel, with replications — must produce bit-identical ResultSets, down
// to the marshalled JSON bytes.
func TestRunnerDeterminismGolden(t *testing.T) {
	run := func(workers int) *ResultSet {
		r := &Runner{Workers: workers, Replications: 2}
		rs, err := r.Run(context.Background(),
			Job{Scenario: mustLookup(t, "terasort"), Cluster: tinyCluster(t)},
			Job{Scenario: mustLookup(t, "terasort"), Cluster: tinyCluster(t, Queue(DropTail), Protect(NoProtection))},
		)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	serial := run(1)
	parallel := run(8)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel runs diverged:\n%+v\n%+v", serial, parallel)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("marshalled JSON differs between runner invocations")
	}
	if len(serial.Results) != 2 {
		t.Fatalf("rows = %d, want 2", len(serial.Results))
	}
	if serial.Results[0].Label != "ecn-ack+syn" || serial.Results[1].Label != "droptail" {
		t.Errorf("row order not job order: %q, %q",
			serial.Results[0].Label, serial.Results[1].Label)
	}
}

// TestRunnerReplicationAveraging checks the Runner's seed fan-out against
// manual single-seed runs.
func TestRunnerReplicationAveraging(t *testing.T) {
	sc := mustLookup(t, "terasort")
	one := func(seed uint64) Result {
		r := &Runner{}
		rs, err := r.Run(context.Background(),
			Job{Scenario: sc, Cluster: tinyCluster(t, Seed(seed))})
		if err != nil {
			t.Fatal(err)
		}
		return rs.Results[0]
	}
	r1, r2 := one(1), one(2)

	r := &Runner{Workers: 4, Replications: 2}
	rs, err := r.Run(context.Background(), Job{Scenario: sc, Cluster: tinyCluster(t, Seed(1))})
	if err != nil {
		t.Fatal(err)
	}
	avg := rs.Results[0]
	if avg.Seed != 1 {
		t.Errorf("averaged row keeps seed %d, want base seed 1", avg.Seed)
	}
	for key := range r1.Values {
		want := (r1.Values[key] + r2.Values[key]) / 2
		if identityKeys[key] {
			// Identity metrics (reducer IDs) keep the base replication's
			// value rather than a meaningless fractional average.
			want = r1.Values[key]
		}
		if got := avg.Values[key]; got != want {
			t.Errorf("%s = %g, want %g (from %g and %g)",
				key, got, want, r1.Values[key], r2.Values[key])
		}
	}
}

func TestRunnerProgressAndCancellation(t *testing.T) {
	sc := mustLookup(t, "terasort")

	var calls int
	r := &Runner{Workers: 1, Replications: 2,
		Progress: func(done, total int, label string) {
			calls++
			if total != 2 {
				t.Errorf("total = %d, want 2", total)
			}
			if label == "" {
				t.Error("empty progress label")
			}
		}}
	if _, err := r.Run(context.Background(), Job{Scenario: sc, Cluster: tinyCluster(t)}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("progress calls = %d, want 2", calls)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{}).Run(ctx, Job{Scenario: sc, Cluster: tinyCluster(t)}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestRunnerRejectsBadJobs(t *testing.T) {
	sc := mustLookup(t, "terasort")
	if _, err := (&Runner{}).Run(context.Background(), Job{Cluster: tinyCluster(t)}); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := (&Runner{}).Run(context.Background(), Job{Scenario: sc}); err == nil {
		t.Error("nil cluster accepted")
	}
}

func TestRunnerScenarioError(t *testing.T) {
	boom := errors.New("boom")
	sc := NewScenario("test-error", "always fails",
		func(ctx context.Context, c *Cluster) ([]Result, error) { return nil, boom })
	if _, err := (&Runner{Workers: 2}).Run(context.Background(),
		Job{Scenario: sc, Cluster: tinyCluster(t)}); !errors.Is(err, boom) {
		t.Errorf("scenario error lost: %v", err)
	}
}

func TestRunScenarioOneCall(t *testing.T) {
	rs, err := RunScenario(context.Background(), "incast",
		Nodes(5), Senders(4), FlowSize(1<<20), Queue(SimpleMark),
		Transport(DCTCP), TargetDelay(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Results[0]
	if r.Scenario != "incast" || r.Value(KeyCompleted) != 4 {
		t.Errorf("incast row: %+v", r)
	}
	if r.Value(KeyGoodput) <= 0 {
		t.Error("incast goodput not positive")
	}

	if _, err := RunScenario(context.Background(), "nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := RunScenario(context.Background(), "terasort", Nodes(0)); err == nil {
		t.Error("invalid options accepted")
	}
}

// TestSweepFacade runs a minimal grid through the public wrapper and checks
// rendering, flattening and the JSON round-trip.
func TestSweepFacade(t *testing.T) {
	s, err := NewSweep(Nodes(4), InputSize(32<<20), BlockSize(8<<20), Reducers(4), Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	s.SetTargetDelays([]time.Duration{100 * time.Microsecond})
	s.SetWorkers(4)
	var progressed int
	s.OnProgress(func(done, total int, label string) { progressed++ })
	if err := s.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if progressed != s.TotalRuns() {
		t.Errorf("progress calls = %d, want %d", progressed, s.TotalRuns())
	}

	fig := s.RenderFigure(RuntimeMetric, Shallow, "2a")
	if !bytes.Contains([]byte(fig), []byte("ecn-simplemark")) {
		t.Errorf("figure missing series:\n%s", fig)
	}

	rows := s.Results()
	// 2 buffers x (1 droptail + 8 series x 1 delay).
	if want := 2 * (1 + 8); len(rows.Results) != want {
		t.Errorf("flattened rows = %d, want %d", len(rows.Results), want)
	}
	if rows.Results[0].Label != "shallow/droptail" {
		t.Errorf("first row label = %q", rows.Results[0].Label)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSweepJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.RenderFigure(RuntimeMetric, Shallow, "2a"); got != fig {
		t.Error("figure from JSON round-trip differs")
	}
	if h := s.Headline(0); h.ThroughputGain <= 0 {
		t.Errorf("headline throughput gain = %g", h.ThroughputGain)
	}
}
