package ecnsim

import (
	"bytes"
	"context"
	"flag"
	"testing"
	"time"
)

// hybridMatrixOpts is the macroscale determinism matrix's cell: 64 nodes in 8
// racks under 4 spines, hot-spotted enough to exercise both service levels,
// short enough for the race detector.
func hybridMatrixOpts(extra ...Option) []Option {
	return append([]Option{
		Nodes(64), Racks(8), Spines(4),
		Queue(RED), Protect(ACKSYN), TargetDelay(500 * time.Microsecond),
		Warmup(5 * time.Millisecond), Measure(40 * time.Millisecond),
		// 512 KiB background transfers finish inside the short window (a
		// 4 MiB default at the fan-out demand slice would outlive it).
		FlowSize(512 << 10),
		Hybrid(),
		Seed(1),
	}, extra...)
}

// TestHybridThreshold0Exactness pins the hybrid engine's exactness mode:
// Hybrid() with FluidThreshold(0) admits nothing fluidly, installs no
// observer tee, and must therefore serialize byte-identical ResultSets to the
// pure packet engine — on the single-switch shuffle and on the leaf-spine
// fabric alike.
func TestHybridThreshold0Exactness(t *testing.T) {
	run := func(hybrid bool) []byte {
		t.Helper()
		base := []Option{
			TestScale(), Queue(RED), Protect(ACKSYN),
			TargetDelay(100 * time.Microsecond), Seed(1),
		}
		if hybrid {
			base = append(base, Hybrid(), FluidThreshold(0))
		}
		fabric := append(append([]Option{}, base...), Racks(4), Spines(2))
		jobs := []Job{
			{Scenario: mustLookup(t, "terasort"), Cluster: mustCluster(t, base...)},
			{Scenario: mustLookup(t, "leafspine"), Cluster: mustCluster(t, fabric...)},
		}
		rs, err := (&Runner{Workers: 1}).Run(context.Background(), jobs...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	packet, exact := run(false), run(true)
	if !bytes.Equal(packet, exact) {
		t.Errorf("Hybrid()+FluidThreshold(0) diverged from the packet engine:\n packet: %s\n hybrid: %s", packet, exact)
	}
}

// TestMacroscaleHybridMatrixByteIdentical is the hybrid determinism matrix:
// the macroscale scenario across {1, 4} event-loop shards × {1, 4} Runner
// workers must serialize byte-identical ResultSets. Two seeds per run give
// the worker pool actual concurrency to mis-order.
func TestMacroscaleHybridMatrixByteIdentical(t *testing.T) {
	run := func(shards, workers int) []byte {
		t.Helper()
		jobs := []Job{
			{Scenario: mustLookup(t, "macroscale"), Cluster: mustCluster(t, hybridMatrixOpts(Shards(shards))...)},
			{Scenario: mustLookup(t, "macroscale"), Cluster: mustCluster(t, hybridMatrixOpts(Shards(shards), Seed(2))...)},
		}
		rs, err := (&Runner{Workers: workers}).Run(context.Background(), jobs...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := run(1, 1)
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 4} {
			if shards == 1 && workers == 1 {
				continue
			}
			if got := run(shards, workers); !bytes.Equal(got, want) {
				t.Errorf("macroscale ResultSet at %d shards / %d workers diverged from serial:\n got:  %s\n want: %s",
					shards, workers, got, want)
			}
		}
	}
}

// TestMacroscaleExercisesBothLevels: the matrix cell is only a determinism
// probe if it actually runs both service levels — fluid transfers must
// dominate and the hot spots must force promotions to packet level.
func TestMacroscaleExercisesBothLevels(t *testing.T) {
	rs, err := (&Runner{Workers: 1}).Run(context.Background(),
		Job{Scenario: mustLookup(t, "macroscale"), Cluster: mustCluster(t, hybridMatrixOpts()...)})
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Results[0]
	if r.Value(KeyFluidCompleted) == 0 || r.Value(KeyFluidBytes) == 0 {
		t.Errorf("no fluid service: %v", r.Values)
	}
	if r.Value(KeyPromotions) == 0 || r.Value(KeyPacketBytes) == 0 {
		t.Errorf("no packet service: %v", r.Values)
	}
	if r.Value(KeyJobsCompleted) == 0 || r.Value(KeyRPCCount) == 0 {
		t.Errorf("workload did not score: %v", r.Values)
	}
}

// TestHybridFingerprint pins the canonical-form contract of the hybrid knobs:
// a Hybrid-off configuration fingerprints identically whatever the resolved
// threshold defaults say (they must not lower), while Hybrid() and each knob
// move the fingerprint.
func TestHybridFingerprint(t *testing.T) {
	base := mustCluster(t, TestScale())
	// The resolved defaults (threshold 0.9, hysteresis 1 ms) exist on every
	// cluster; without Hybrid() they must stay out of the canonical form.
	if got := mustCluster(t, TestScale(), FluidThreshold(0.5)); base.Fingerprint() != got.Fingerprint() {
		t.Error("FluidThreshold without Hybrid() moved the fingerprint")
	}
	hybrid := mustCluster(t, TestScale(), Hybrid())
	if base.Fingerprint() == hybrid.Fingerprint() {
		t.Error("Hybrid() did not move the fingerprint")
	}
	if got := mustCluster(t, TestScale(), Hybrid(), FluidThreshold(0.5)); got.Fingerprint() == hybrid.Fingerprint() {
		t.Error("FluidThreshold under Hybrid() did not move the fingerprint")
	}
	if got := mustCluster(t, TestScale(), Hybrid(), PromoteHysteresis(5*time.Millisecond)); got.Fingerprint() == hybrid.Fingerprint() {
		t.Error("PromoteHysteresis under Hybrid() did not move the fingerprint")
	}
}

// TestFlagsHybrid: the FlagsHybrid group binds -hybrid and -fluid-threshold,
// resolves them only when -hybrid is set, and stays off other binders.
func TestFlagsHybrid(t *testing.T) {
	b := NewFlagBinder(FlagsHybrid | FlagsFabric)
	fs := flag.NewFlagSet("hybrid", flag.ContinueOnError)
	b.Bind(fs)
	for _, want := range []string{"hybrid", "fluid-threshold", "shards"} {
		if fs.Lookup(want) == nil {
			t.Errorf("FlagsHybrid binder missing -%s", want)
		}
	}
	if fs := flag.NewFlagSet("plain", flag.ContinueOnError); true {
		NewFlagBinder(FlagsFabric).Bind(fs)
		if fs.Lookup("hybrid") != nil {
			t.Error("FlagsFabric binder grew -hybrid")
		}
	}

	if err := fs.Parse([]string{"-hybrid", "-fluid-threshold", "0.5", "-racks", "8", "-spines", "4"}); err != nil {
		t.Fatal(err)
	}
	opts, err := b.Options()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(append([]Option{Nodes(64)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	// Shards(1): the binder's implicit FlagsRun group always resolves.
	want := mustCluster(t, Nodes(64), Racks(8), Spines(4), Shards(1), Hybrid(), FluidThreshold(0.5))
	if c.Fingerprint() != want.Fingerprint() {
		t.Errorf("flag-built cluster fingerprint diverges from the option-built one")
	}

	// Without -hybrid the threshold flag contributes nothing: the build is
	// fingerprint-identical to a plain cluster.
	b2 := NewFlagBinder(FlagsHybrid)
	fs2 := flag.NewFlagSet("off", flag.ContinueOnError)
	b2.Bind(fs2)
	if err := fs2.Parse([]string{"-fluid-threshold", "0.3"}); err != nil {
		t.Fatal(err)
	}
	opts2, err := b2.Options()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCluster(opts2...)
	if err != nil {
		t.Fatal(err)
	}
	if plain := mustCluster(t, Shards(1)); c2.Fingerprint() != plain.Fingerprint() {
		t.Error("-fluid-threshold without -hybrid moved the fingerprint")
	}
}
