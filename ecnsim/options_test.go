package ecnsim

import (
	"strings"
	"testing"
	"time"
)

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	if c.nodes != 16 || c.queue != DropTail || c.buffer != Shallow {
		t.Errorf("defaults: nodes=%d queue=%v buffer=%v", c.nodes, c.queue, c.buffer)
	}
	if c.transport != TCP {
		t.Errorf("DropTail default transport = %v, want TCP", c.transport)
	}
	if c.Label() != "droptail" {
		t.Errorf("Label = %q", c.Label())
	}
}

func TestTransportAutoFollowsQueue(t *testing.T) {
	c, err := NewCluster(Queue(RED), TargetDelay(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if c.transport != TCPECN {
		t.Errorf("RED default transport = %v, want TCPECN", c.transport)
	}
	c, err = NewCluster(Queue(RED), Transport(DCTCP), TargetDelay(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if c.transport != DCTCP {
		t.Errorf("explicit transport overridden: %v", c.transport)
	}
}

func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string // substring of the error
	}{
		{"too few nodes", []Option{Nodes(1)}, "at least 2 nodes"},
		{"negative racks", []Option{Racks(-1)}, "non-negative"},
		{"zero target delay", []Option{TargetDelay(0)}, "must be positive"},
		{"zero input", []Option{InputSize(0)}, "must be positive"},
		{"negative block", []Option{BlockSize(-1)}, "non-negative"},
		{"zero reducers", []Option{Reducers(0)}, "at least 1"},
		{"zero link rate", []Option{LinkRate(0)}, "must be positive"},
		{"negative link delay", []Option{LinkDelay(-time.Microsecond)}, "non-negative"},
		{"negative minRTO", []Option{MinRTO(-time.Millisecond)}, "non-negative"},
		{"zero flow size", []Option{FlowSize(0)}, "must be positive"},
		{"zero rpc interval", []Option{RPCInterval(0)}, "must be positive"},
		{"unknown queue", []Option{Queue(QueueKind(99))}, "unknown queue"},
		{"unknown protect", []Option{Protect(ProtectMode(99))}, "unknown protection"},
		{"unknown transport", []Option{Transport(TransportKind(99))}, "unknown transport"},
		{"unknown buffer", []Option{Buffer(BufferDepth(99))}, "unknown buffer"},
		{"nil option", []Option{nil}, "nil option"},
		{"protection on droptail", []Option{Protect(ACKSYN)}, "requires an AQM queue"},
		{"protection on simplemark",
			[]Option{Queue(SimpleMark), Protect(ACKSYN), TargetDelay(100 * time.Microsecond)},
			"requires an AQM queue"},
		{"block exceeds input",
			[]Option{InputSize(1 << 20), BlockSize(64 << 20)}, "exceeds input size"},
		{"senders need nodes", []Option{Nodes(4), Senders(4)}, "at least 5 nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster(tc.opts...)
			if err == nil {
				t.Fatalf("NewCluster(%s) succeeded, want error containing %q", tc.name, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLabels(t *testing.T) {
	cases := []struct {
		opts []Option
		want string
	}{
		{nil, "droptail"},
		{[]Option{Queue(RED), TargetDelay(time.Millisecond)}, "ecn-default"},
		{[]Option{Queue(RED), Protect(ACKSYN), TargetDelay(time.Millisecond)}, "ecn-ack+syn"},
		{[]Option{Queue(RED), Protect(ECE), Transport(DCTCP), TargetDelay(time.Millisecond)}, "dctcp-ece-bit"},
		{[]Option{Queue(SimpleMark), Transport(DCTCP), TargetDelay(time.Millisecond)}, "dctcp-simplemark"},
		{[]Option{Queue(CoDel), Protect(ACKSYN), TargetDelay(time.Millisecond)}, "codel-ack+syn"},
		{[]Option{Queue(PIE), TargetDelay(time.Millisecond)}, "pie-default"},
		{[]Option{Queue(CoDel), Transport(DCTCP), TargetDelay(time.Millisecond)}, "codel-dctcp-default"},
		{[]Option{Queue(PIE), Transport(TCP), Protect(ACKSYN), TargetDelay(time.Millisecond)}, "pie-tcp-ack+syn"},
	}
	for _, tc := range cases {
		c, err := NewCluster(tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.want, err)
		}
		if got := c.Label(); got != tc.want {
			t.Errorf("Label = %q, want %q", got, tc.want)
		}
	}
}

func TestParsers(t *testing.T) {
	if q, err := ParseQueue("RED"); err != nil || q != RED {
		t.Errorf("ParseQueue(RED) = %v, %v", q, err)
	}
	if _, err := ParseQueue("fifo"); err == nil {
		t.Error("ParseQueue(fifo) succeeded")
	}
	if m, err := ParseProtect("ack+syn"); err != nil || m != ACKSYN {
		t.Errorf("ParseProtect(ack+syn) = %v, %v", m, err)
	}
	if _, err := ParseProtect("everything"); err == nil {
		t.Error("ParseProtect(everything) succeeded")
	}
	if tr, err := ParseTransport("dctcp"); err != nil || tr != DCTCP {
		t.Errorf("ParseTransport(dctcp) = %v, %v", tr, err)
	}
	if _, err := ParseTransport("udp"); err == nil {
		t.Error("ParseTransport(udp) succeeded")
	}
	if b, err := ParseBuffer("deep"); err != nil || b != Deep {
		t.Errorf("ParseBuffer(deep) = %v, %v", b, err)
	}
	if _, err := ParseBuffer("bottomless"); err == nil {
		t.Error("ParseBuffer(bottomless) succeeded")
	}
	if n, err := ParseSize("64MiB"); err != nil || n != 64<<20 {
		t.Errorf("ParseSize(64MiB) = %d, %v", n, err)
	}
	if _, err := ParseSize("sixty-four"); err == nil {
		t.Error("ParseSize(sixty-four) succeeded")
	}
	// Round-trips through the String forms.
	for _, q := range []QueueKind{DropTail, RED, SimpleMark, CoDel, PIE} {
		got, err := ParseQueue(q.String())
		if err != nil || got != q {
			t.Errorf("queue round-trip %v -> %v, %v", q, got, err)
		}
	}
	for _, m := range []ProtectMode{NoProtection, ECE, ACKSYN} {
		got, err := ParseProtect(m.String())
		if err != nil || got != m {
			t.Errorf("protect round-trip %v -> %v, %v", m, got, err)
		}
	}
	for _, tr := range []TransportKind{TCP, TCPECN, DCTCP} {
		got, err := ParseTransport(tr.String())
		if err != nil || got != tr {
			t.Errorf("transport round-trip %v -> %v, %v", tr, got, err)
		}
	}
}

func TestFlagSetOptions(t *testing.T) {
	fl := DefaultFlags()
	fl.Queue = "red"
	fl.Mode = "ack+syn"
	fl.Transport = "dctcp"
	fl.BufferStr = "deep"
	fl.Target = 100 * time.Microsecond
	fl.Nodes = 8
	fl.Input = "256MiB"
	fl.Block = ""
	fl.Reducers = 16
	opts, err := fl.Options()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if c.Label() != "dctcp-ack+syn" || c.buffer != Deep || c.nodes != 8 {
		t.Errorf("resolved cluster %v", c)
	}
	if c.blockSize != c.inputSize/int64(c.nodes) {
		t.Errorf("auto block size = %d", c.blockSize)
	}

	fl.Queue = "fifo"
	if _, err := fl.Options(); err == nil {
		t.Error("bad -queue accepted")
	}
}

func TestBlockSizeAuto(t *testing.T) {
	c, err := NewCluster(Nodes(8), InputSize(64<<20), BlockSize(0))
	if err != nil {
		t.Fatal(err)
	}
	if c.blockSize != 8<<20 {
		t.Errorf("auto block = %d, want %d", c.blockSize, 8<<20)
	}
}
